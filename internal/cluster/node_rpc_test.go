// Node RPC error taxonomy and protocol discipline, exercised at the wire
// level (an in-package test so it can craft raw vxmlcluster/1 requests):
// schema validation, stale-generation replies carrying the node's
// generation, mutation idempotency under retry, view self-healing, and
// per-node timeout failover.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// postNode posts one JSON request to a node route and decodes the JSON
// reply (error bodies included) into out.
func postNode(t *testing.T, base, path string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+pathPrefix+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s reply: %v", path, err)
		}
	}
	return resp.StatusCode
}

const rpcTestDoc = `<books><article><fm><tl>copper</tl><au>author0</au><yr>1999</yr></fm><bdy>copper quartz</bdy></article></books>`

// TestNodeSchemaValidation pins both directions of the schema gate: the
// declared protocol version is accepted, and any other is rejected with a
// 400 naming the wanted schema. (The accept case is the regression guard —
// the check must read the schema the decoder filled in, not the zero value
// it had before decoding.)
func TestNodeSchemaValidation(t *testing.T) {
	srv := httptest.NewServer(NewNode().Handler())
	defer srv.Close()

	var ok map[string]string
	if code := postNode(t, srv.URL, "/views", viewRequest{
		Schema: Schema, Name: "v", XQuery: `for $a in fn:doc(x.xml)/books//article return <r>{$a/bdy}</r>`,
	}, &ok); code != http.StatusOK {
		t.Fatalf("well-formed %s request rejected with %d", Schema, code)
	}

	var eb errorBody
	if code := postNode(t, srv.URL, "/views", viewRequest{
		Schema: "vxmlcluster/99", Name: "v", XQuery: "x",
	}, &eb); code != http.StatusBadRequest {
		t.Fatalf("wrong-schema request answered %d, want 400", code)
	}
	if eb.Code != codeInvalid {
		t.Fatalf("wrong-schema error code %q, want %q", eb.Code, codeInvalid)
	}
}

// TestNodeStaleGenerationCarriesGen: a read at the wrong generation is
// rejected with 409/stale_generation and the node's own generation, which
// is what lets the coordinator tell a lagging replica from its own
// outdated vector.
func TestNodeStaleGenerationCarriesGen(t *testing.T) {
	n := NewNode()
	srv := httptest.NewServer(n.Handler())
	defer srv.Close()

	if code := postNode(t, srv.URL, "/documents", documentRequest{
		Schema: Schema, Op: "add", Name: "part-00.xml", XML: rpcTestDoc, DocID: 1, SetGen: 1,
	}, nil); code != http.StatusOK {
		t.Fatalf("add: %d", code)
	}
	if code := postNode(t, srv.URL, "/views", viewRequest{
		Schema: Schema, Name: "v",
		XQuery: `for $a in fn:collection("part-*")/books//article return <r>{$a/bdy}</r>`,
	}, nil); code != http.StatusOK {
		t.Fatalf("view push: %d", code)
	}

	var eb errorBody
	if code := postNode(t, srv.URL, "/rank", rankRequest{
		Schema: Schema, View: "v", Keywords: []string{"copper"}, Gen: 7,
	}, &eb); code != http.StatusConflict {
		t.Fatalf("stale rank answered %d, want 409", code)
	}
	if eb.Code != codeStaleGeneration {
		t.Fatalf("stale rank code %q, want %q", eb.Code, codeStaleGeneration)
	}
	if eb.Gen != 1 {
		t.Fatalf("stale reply advertises generation %d, node is at 1", eb.Gen)
	}

	// At the right generation the same rank succeeds.
	var rr rankResponse
	if code := postNode(t, srv.URL, "/rank", rankRequest{
		Schema: Schema, View: "v", Keywords: []string{"copper"}, Gen: 1,
	}, &rr); code != http.StatusOK {
		t.Fatalf("in-generation rank answered %d", code)
	}
	if rr.Gen != 1 || rr.ViewSize != 1 || len(rr.Contains) != 1 {
		t.Fatalf("rank reply %+v, want gen=1 view_size=1 one contains entry", rr)
	}
}

// TestNodeMutationIdempotentRetry: re-sending a mutation whose ack was
// lost must not double-apply — adds and replaces are idempotent on
// (name, doc_id), deletes on name.
func TestNodeMutationIdempotentRetry(t *testing.T) {
	n := NewNode()
	srv := httptest.NewServer(n.Handler())
	defer srv.Close()

	add := documentRequest{Schema: Schema, Op: "add", Name: "part-00.xml", XML: rpcTestDoc, DocID: 3, SetGen: 1}
	for i := 0; i < 2; i++ {
		var ack documentResponse
		if code := postNode(t, srv.URL, "/documents", add, &ack); code != http.StatusOK {
			t.Fatalf("add retry %d: %d", i, code)
		}
		if ack.Gen != 1 {
			t.Fatalf("add retry %d acked generation %d, want 1", i, ack.Gen)
		}
	}
	if n.Documents() != 1 {
		t.Fatalf("%d documents after an idempotent retry, want 1", n.Documents())
	}

	del := documentRequest{Schema: Schema, Op: "delete", Name: "part-00.xml", SetGen: 2}
	for i := 0; i < 2; i++ {
		if code := postNode(t, srv.URL, "/documents", del, nil); code != http.StatusOK {
			t.Fatalf("delete retry %d: %d", i, code)
		}
	}
	if n.Documents() != 0 || n.Gen() != 2 {
		t.Fatalf("after idempotent delete: %d documents at generation %d, want 0 at 2", n.Documents(), n.Gen())
	}
}

// TestCoordinatorHealsUnpushedView: a node that answers unknown_view (a
// restarted member, or one that missed the define-time push) is healed by
// re-pushing the registered definition and the search retried — the caller
// never sees the miss.
func TestCoordinatorHealsUnpushedView(t *testing.T) {
	n := NewNode()
	srv := httptest.NewServer(n.Handler())
	defer srv.Close()
	c, err := NewCoordinator(Config{Slots: [][]string{{srv.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.AddDocument(ctx, "part-00.xml", rpcTestDoc); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DefineView(ctx, "v",
		`for $a in fn:collection("part-*")/books//article return <r>{$a/bdy}</r>`); err != nil {
		t.Fatal(err)
	}

	// Simulate the node forgetting the view (e.g. a restart that kept the
	// corpus but not the pushes).
	n.mu.Lock()
	delete(n.views, "v")
	delete(n.texts, "v")
	n.mu.Unlock()

	results, _, err := c.Search(ctx, "v", []string{"copper"}, nil)
	if err != nil {
		t.Fatalf("search after the node lost the view: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("%d results after heal, want 1", len(results))
	}
}

// TestNodeTimeoutFailsOver: a member that hangs past the per-RPC timeout
// is treated as down — the search fails over to the next member of the
// slot and succeeds, and the caller's own context stays intact.
func TestNodeTimeoutFailsOver(t *testing.T) {
	n := NewNode()
	good := httptest.NewServer(n.Handler())
	defer good.Close()
	release := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // hold every RPC until the test ends
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer hang.Close()
	defer close(release) // LIFO: unblock the handlers before Close waits on them

	c, err := NewCoordinator(Config{
		Slots:   [][]string{{hang.URL, good.URL}},
		Timeout: 100 * time.Millisecond,
		Retries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// The mutation path must also fail over past the hanging... no: writes
	// route to the primary only. Seed the corpus through the good member by
	// reaching it directly at the node layer instead.
	if code := postNode(t, good.URL, "/documents", documentRequest{
		Schema: Schema, Op: "add", Name: "part-00.xml", XML: rpcTestDoc, DocID: 1, SetGen: 0,
	}, nil); code != http.StatusOK {
		t.Fatalf("seeding good member: %d", code)
	}
	if _, err := c.DefineView(ctx, "v",
		`for $a in fn:collection("part-*")/books//article return <r>{$a/bdy}</r>`); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	results, stats, err := c.Search(ctx, "v", []string{"copper"}, nil)
	if err != nil {
		t.Fatalf("search did not fail over past the hanging primary: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("%d results via the replica, want 1", len(results))
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("failover took %v; the per-node timeout did not bound the hang", elapsed)
	}
	var hungFailed, goodOK bool
	for _, ns := range stats.Nodes {
		if ns.URL == hang.URL && ns.State == "failed" {
			hungFailed = true
		}
		if ns.URL == good.URL && ns.State == "ok" {
			goodOK = true
		}
	}
	if !hungFailed || !goodOK {
		t.Fatalf("stats do not record the failover: %+v", stats.Nodes)
	}
	if ctx.Err() != nil {
		t.Fatal("the caller's context was canceled by the per-node timeout")
	}
}

// TestRoutingClassification drives the static analysis that decides how a
// view executes over the partitioned corpus: scatter for single-reference
// partitioned outer loops, single-node for broadcast or slot-local views,
// and a typed refusal when references span slots.
func TestRoutingClassification(t *testing.T) {
	// The member URLs are dead on purpose: DefineView's pushes are
	// best-effort, and classification itself never talks to a node. The
	// short timeout keeps those doomed pushes from slowing the test.
	c, err := NewCoordinator(Config{
		Slots:   [][]string{{"http://127.0.0.1:1"}, {"http://127.0.0.1:2"}},
		Timeout: 50 * time.Millisecond,
		Retries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Register placement directly (the push to the dead members is
	// best-effort by design, so defineView still succeeds).
	c.docs["cat.xml"] = &docInfo{id: 1, slot: -1}
	c.docs["part-a.xml"] = &docInfo{id: 2, slot: 0}
	c.docs["part-b.xml"] = &docInfo{id: 3, slot: 1}

	ctx := context.Background()
	cases := []struct {
		name, xquery string
		scatter      bool
		slot         int // meaningful when !scatter
		unroutable   bool
	}{
		{"collection-scatter",
			`for $a in fn:collection("part-*")/books//article return <r>{$a/bdy}</r>`,
			true, 0, false},
		{"collection-join-broadcast",
			`for $a in fn:collection("part-*")/books//article
			 return <r>{$a/fm/tl}, {for $u in fn:doc(cat.xml)/authors//author
			   where $u/name = $a/fm/au return $u/affil}</r>`,
			true, 0, false},
		{"broadcast-only",
			`for $u in fn:doc(cat.xml)/authors//author return <r>{$u/affil}</r>`,
			false, -1, false},
		{"single-partitioned-doc-scatters",
			// A lone partitioned reference still scatters: the other slots
			// contribute empty outputs, and the merge stays exact.
			`for $a in fn:doc(part-a.xml)/books//article return <r>{$a/bdy}</r>`,
			true, 0, false},
		{"self-join-pins-owning-slot",
			// The outer reference used twice is a self-join — it must not
			// scatter, and the owning slot serves it whole.
			`for $a in fn:doc(part-a.xml)/books//article
			 return <r>{$a/fm/tl}, {for $b in fn:doc(part-a.xml)/books//article
			   where $b/fm/yr = $a/fm/yr return $b/fm/au}</r>`,
			false, 0, false},
		{"cross-slot-join",
			`for $a in fn:doc(part-a.xml)/books//article
			 return <r>{$a/fm/tl}, {for $b in fn:doc(part-b.xml)/books//article
			   where $b/fm/au = $a/fm/au return $b/fm/yr}</r>`,
			false, 0, true},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := c.DefineView(ctx, tt.name, tt.xquery); err != nil {
				t.Fatalf("define: %v", err)
			}
			c.mu.RLock()
			r, err := c.classifyLocked(c.views[tt.name])
			c.mu.RUnlock()
			if tt.unroutable {
				if err == nil {
					t.Fatalf("classified as %+v, want ErrUnroutableView", r)
				}
				return
			}
			if err != nil {
				t.Fatalf("classify: %v", err)
			}
			if r.scatter != tt.scatter {
				t.Fatalf("scatter = %v, want %v", r.scatter, tt.scatter)
			}
			if !tt.scatter && r.slot != tt.slot {
				t.Fatalf("slot = %d, want %d", r.slot, tt.slot)
			}
		})
	}
}

// TestBroadcastAddPartialFailureRepair: a broadcast add that acks on one
// slot and fails on another must not poison the write path. Three
// properties pin the repair: the consumed document ID is burned (a later
// add must not be rejected by the acked slot with "ID already in use"),
// the acked slot is compensated with a delete (an orphan would wedge any
// retry of the name as a duplicate), and once the dead slot returns the
// same add succeeds cluster-wide.
func TestBroadcastAddPartialFailureRepair(t *testing.T) {
	n0 := NewNode()
	live := httptest.NewServer(n0.Handler())
	defer live.Close()
	c, err := NewCoordinator(Config{
		Slots:   [][]string{{live.URL}, {"http://127.0.0.1:1"}},
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// cat.xml does not match the partition patterns, so the add broadcasts:
	// slot 0 acks, slot 1 is unreachable.
	err = c.AddDocument(ctx, "cat.xml", rpcTestDoc)
	if !errors.Is(err, ErrNodeUnavailable) {
		t.Fatalf("broadcast add with a dead slot: %v, want ErrNodeUnavailable", err)
	}
	if n0.Documents() != 0 {
		t.Fatalf("acked slot holds %d documents after the failed broadcast; compensation should have deleted the orphan", n0.Documents())
	}

	// A partitioned add owned by the live slot must succeed — without ID
	// reservation the burned ID was reused and the acked node rejected it.
	owned := ""
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("part-%02d.xml", i)
		if c.slotOf(name) == 0 {
			owned = name
			break
		}
	}
	if owned == "" {
		t.Fatal("no partitioned name hashing to slot 0 in 64 tries")
	}
	if err := c.AddDocument(ctx, owned, rpcTestDoc); err != nil {
		t.Fatalf("partitioned add to the live slot after a failed broadcast: %v", err)
	}

	// Once the dead slot comes back, the same broadcast name is retryable:
	// compensation left no orphan on slot 0 to collide with.
	n1 := NewNode()
	revived := httptest.NewServer(n1.Handler())
	defer revived.Close()
	c.cfg.Slots[1][0] = revived.URL
	if err := c.AddDocument(ctx, "cat.xml", rpcTestDoc); err != nil {
		t.Fatalf("broadcast add after the slot recovered: %v", err)
	}
	if n0.Documents() != 2 || n1.Documents() != 1 {
		t.Fatalf("documents after recovery: slot0=%d slot1=%d, want 2 and 1", n0.Documents(), n1.Documents())
	}
}
