// Disk-backed snapshot shipping: a node whose corpus slice lives in the
// disk-resident store must ship its block files verbatim (data log first,
// MANIFEST.vxd last), and a replica bootstrapped from that stream must
// serve byte-identical reads — including after the primary dies.
package cluster_test

import (
	"bufio"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"vxml/internal/cluster"
	"vxml/internal/diskstore"
	"vxml/internal/testkit"
)

func TestDiskNodeSnapshotAndFailover(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	primary, err := cluster.NewDiskNode(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primarySrv := httptest.NewServer(primary.Handler())
	defer primarySrv.Close()

	var replica atomic.Pointer[cluster.Node]
	replica.Store(cluster.NewNode())
	replicaSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		replica.Load().Handler().ServeHTTP(w, r)
	}))
	defer replicaSrv.Close()

	coord, err := cluster.NewCoordinator(cluster.Config{
		Slots:   [][]string{{primarySrv.URL, replicaSrv.URL}},
		Retries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rec recorder
	testkit.FillEqCorpus(t, rng, 10, &rec)
	for _, d := range rec.docs {
		if err := coord.AddDocument(context.Background(), d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := coord.DefineView(context.Background(), "v", testkit.EqViews[1]); err != nil {
		t.Fatal(err)
	}
	kws := []string{"copper", "quartz"}
	ref, _, err := coord.Search(context.Background(), "v", kws, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The raw snapshot stream must name the disk store's files — a
	// CORPUS-*.vxd data log before the committing MANIFEST.vxd, nothing
	// re-serialized — followed by the done marker.
	resp, err := http.Get(primarySrv.URL + "/cluster/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var names []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(nil, 64<<20)
	sawDone := false
	for sc.Scan() {
		var chunk struct {
			File string `json:"file"`
			Done bool   `json:"done"`
		}
		if err := json.Unmarshal(sc.Bytes(), &chunk); err != nil {
			continue // header line has a different shape
		}
		if chunk.File != "" {
			names = append(names, chunk.File)
		}
		if chunk.Done {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatal("snapshot stream has no done marker")
	}
	if len(names) != 2 || !strings.HasPrefix(names[0], "CORPUS-") || names[1] != diskstore.ManifestFileName {
		t.Fatalf("disk snapshot shipped %v, want [CORPUS-*.vxd %s]", names, diskstore.ManifestFileName)
	}

	// Bootstrap a replica from the stream: it opens the shipped block files
	// as a disk store and serves byte-identical reads after failover.
	boot, err := cluster.NewNodeFromSnapshot(context.Background(), nil, primarySrv.URL)
	if err != nil {
		t.Fatalf("snapshot bootstrap: %v", err)
	}
	defer boot.Close()
	if boot.Gen() != primary.Gen() {
		t.Fatalf("replica at generation %d, primary at %d", boot.Gen(), primary.Gen())
	}
	if boot.Documents() != primary.Documents() {
		t.Fatalf("replica holds %d documents, primary %d", boot.Documents(), primary.Documents())
	}
	replica.Store(boot)
	primarySrv.Close()

	got, _, err := coord.Search(context.Background(), "v", kws, nil)
	if err != nil {
		t.Fatalf("failover search: %v", err)
	}
	testkit.MustEqualResults(t, "disk replica failover", ref, got)
}
