package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"vxml/internal/core"
	"vxml/internal/diskstore"
	"vxml/internal/store"
	"vxml/internal/xq"
)

// nodeMaxBodyBytes caps node RPC request bodies, matching the public HTTP
// layer's document cap.
const nodeMaxBodyBytes = 64 << 20

// Node is one cluster member: a full single-process search engine over its
// slice of the corpus (one hash partition plus every broadcast document),
// exposed through the vxmlcluster/1 RPC surface. Create one with NewNode
// (empty) or NewNodeFromSnapshot (replica bootstrap) and serve Handler.
type Node struct {
	// mu orders reads against mutations and is the node's entire
	// generation-correctness argument: every read handler holds it shared
	// for its whole pipeline and stamps the reply with gen read under it;
	// every mutation holds it exclusively across [apply + adopt new
	// generation]. A reply stamped generation g was therefore computed on
	// exactly the generation-g corpus — never on a half-applied one.
	mu     sync.RWMutex
	engine *core.Engine
	gen    uint64
	views  map[string]*core.View
	texts  map[string]string
	// bootDir holds a disk-backed replica's received block files for the
	// node's lifetime; Close removes it. Empty for heap-backed nodes.
	bootDir string
}

// Close releases backend resources: a disk-backed node's store file
// handles and the temp directory its snapshot bootstrap received. It is a
// no-op for heap-backed nodes.
func (n *Node) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	var err error
	if c, ok := n.engine.Store.(io.Closer); ok {
		err = c.Close()
	}
	if n.bootDir != "" {
		if rerr := os.RemoveAll(n.bootDir); err == nil {
			err = rerr
		}
		n.bootDir = ""
	}
	return err
}

// NewNode creates an empty node at generation zero.
func NewNode() *Node {
	return &Node{
		engine: core.New(store.NewSharded(0)),
		views:  map[string]*core.View{},
		texts:  map[string]string{},
	}
}

// NewDiskNode creates a node whose corpus slice lives in a disk-resident,
// DAG-compressed store at dir (created empty on first run, reopened with
// its persisted documents otherwise). The node still starts at generation
// zero: generation is coordinator state, adopted per acknowledged
// mutation, so a restarted disk node rejoins as a fresh member that
// happens to hold its slice already — the coordinator's generation check
// decides whether that slice is current. Snapshots from a disk node ship
// its block files verbatim.
func NewDiskNode(dir string) (*Node, error) {
	var ds *diskstore.Store
	var err error
	if diskstore.Exists(dir) {
		ds, err = diskstore.Open(dir)
	} else {
		ds, err = diskstore.Init(dir, 0, diskstore.Options{})
	}
	if err != nil {
		return nil, err
	}
	return &Node{
		engine: core.New(ds),
		views:  map[string]*core.View{},
		texts:  map[string]string{},
	}, nil
}

// Gen returns the node's current corpus generation.
func (n *Node) Gen() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.gen
}

// Documents reports the number of documents the node holds.
func (n *Node) Documents() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.engine.Store.Docs())
}

// nodeRoutes is the single source of the RPC routing table: Handler
// registers it and Routes exposes it, so the docs-drift test can hold
// docs/API.md to exactly this list.
func (n *Node) nodeRoutes() []struct {
	method, path string
	handler      http.HandlerFunc
} {
	return []struct {
		method, path string
		handler      http.HandlerFunc
	}{
		{"GET", "/health", n.handleHealth},
		{"POST", "/views", n.handleView},
		{"POST", "/documents", n.handleDocument},
		{"POST", "/rank", n.handleRank},
		{"POST", "/materialize", n.handleMaterialize},
		{"POST", "/search", n.handleSearch},
		{"GET", "/snapshot", n.handleSnapshot},
	}
}

// Handler returns the node's RPC surface (all routes under /cluster/v1).
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range n.nodeRoutes() {
		mux.HandleFunc(r.method+" "+pathPrefix+r.path, r.handler)
	}
	return mux
}

// Routes lists the node RPC surface as "METHOD /cluster/v1/path" strings,
// in registration order — the docs-drift test's source of truth.
func (n *Node) Routes() []string {
	var out []string
	for _, r := range n.nodeRoutes() {
		out = append(out, r.method+" "+pathPrefix+r.path)
	}
	return out
}

// nodeDecode decodes a JSON request body strictly (unknown fields rejected,
// size-capped) and validates the protocol schema. schema points into dst
// (it can only be read after the decode fills it).
func nodeDecode(w http.ResponseWriter, r *http.Request, dst any, schema *string) bool {
	r.Body = http.MaxBytesReader(w, r.Body, nodeMaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		nodeJSON(w, status, errorBody{Error: "decoding request: " + err.Error(), Code: codeInvalid})
		return false
	}
	if *schema != Schema {
		nodeJSON(w, http.StatusBadRequest, errorBody{
			Error: fmt.Sprintf("schema %q not supported (want %q)", *schema, Schema), Code: codeInvalid})
		return false
	}
	return true
}

// nodeJSON writes one JSON response with the given status.
func nodeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// statusClientClosedRequest mirrors the public HTTP layer's non-standard
// nginx convention for a canceled request context.
const statusClientClosedRequest = 499

// nodeErrorFor maps an engine error onto the node error taxonomy.
func nodeErrorFor(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, codeInternal
	var pe *xq.ParseError
	switch {
	case errors.Is(err, context.Canceled):
		status, code = statusClientClosedRequest, codeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		status, code = http.StatusRequestTimeout, codeDeadline
	case errors.Is(err, core.ErrUnknownDocument):
		status, code = http.StatusNotFound, codeUnknownDocument
	case errors.Is(err, store.ErrDuplicateName):
		status, code = http.StatusConflict, codeDuplicate
	case errors.As(err, &pe), errors.Is(err, core.ErrUnpartitionableView):
		status, code = http.StatusBadRequest, codeInvalid
	}
	nodeJSON(w, status, errorBody{Error: err.Error(), Code: code})
}

// staleError rejects a read or mutation whose generation does not match,
// reporting the node's current generation so the coordinator can tell a
// lagging replica from its own outdated vector.
func staleError(w http.ResponseWriter, want, have uint64) {
	nodeJSON(w, http.StatusConflict, errorBody{
		Error: fmt.Sprintf("request generation %d, node at %d", want, have),
		Code:  codeStaleGeneration,
		Gen:   have,
	})
}

func (n *Node) handleHealth(w http.ResponseWriter, _ *http.Request) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	nodeJSON(w, http.StatusOK, healthResponse{
		Schema:     Schema,
		Gen:        n.gen,
		Documents:  len(n.engine.Store.Docs()),
		TotalBytes: n.engine.Store.TotalBytes(),
		Views:      len(n.views),
	})
}

// handleView registers a coordinator-pushed view. Compilation skips the
// literal-document existence check (CompileViewUnchecked): the coordinator
// validated the definition against the cluster-wide registry, and this node
// holds only its partition. A re-push of an existing name overwrites —
// pushes are idempotent and the coordinator is authoritative.
func (n *Node) handleView(w http.ResponseWriter, r *http.Request) {
	var req viewRequest
	if !nodeDecode(w, r, &req, &req.Schema) {
		return
	}
	if req.Name == "" || req.XQuery == "" {
		nodeJSON(w, http.StatusBadRequest, errorBody{Error: "name and xquery are required", Code: codeInvalid})
		return
	}
	v, err := n.engine.CompileViewUnchecked(req.XQuery)
	if err != nil {
		nodeErrorFor(w, err)
		return
	}
	n.mu.Lock()
	n.views[req.Name], n.texts[req.Name] = v, req.XQuery
	n.mu.Unlock()
	nodeJSON(w, http.StatusOK, map[string]string{"name": req.Name})
}

// handleDocument applies one coordinator-routed mutation and adopts the
// generation the coordinator assigned. Adds and replaces are idempotent on
// (name, doc_id) and deletes on name, so the coordinator may safely retry a
// mutation whose acknowledgment was lost; the registry on the coordinator —
// not this handler — is what rejects user-level errors like deleting a name
// that was never added.
func (n *Node) handleDocument(w http.ResponseWriter, r *http.Request) {
	var req documentRequest
	if !nodeDecode(w, r, &req, &req.Schema) {
		return
	}
	if req.Name == "" {
		nodeJSON(w, http.StatusBadRequest, errorBody{Error: "name is required", Code: codeInvalid})
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	var err error
	switch req.Op {
	case "add":
		if cur := n.engine.Store.Doc(req.Name); cur != nil && cur.DocID == req.DocID {
			break // idempotent retry: already applied
		}
		err = n.engine.AddXMLAt(req.Name, req.XML, req.DocID)
	case "replace":
		if cur := n.engine.Store.Doc(req.Name); cur != nil && cur.DocID == req.DocID {
			break // idempotent retry
		}
		err = n.engine.ReplaceXMLAt(req.Name, req.XML, req.DocID)
	case "delete":
		if n.engine.Store.Doc(req.Name) != nil {
			err = n.engine.Delete(req.Name)
		}
	default:
		nodeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown op %q", req.Op), Code: codeInvalid})
		return
	}
	if err != nil {
		nodeErrorFor(w, err)
		return
	}
	n.gen = req.SetGen
	resp := documentResponse{Gen: n.gen}
	if doc := n.engine.Store.Doc(req.Name); doc != nil {
		resp.ByteLen = doc.Root.ByteLen
	}
	nodeJSON(w, http.StatusOK, resp)
}

// lockedView resolves a read request's view under the already-held read
// lock, writing the error reply itself when the generation or name does not
// check out.
func (n *Node) lockedView(w http.ResponseWriter, name string, gen uint64) (*core.View, bool) {
	if gen != n.gen {
		staleError(w, gen, n.gen)
		return nil, false
	}
	v := n.views[name]
	if v == nil {
		nodeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown view %q", name), Code: codeUnknownView})
		return nil, false
	}
	return v, true
}

func (n *Node) handleRank(w http.ResponseWriter, r *http.Request) {
	var req rankRequest
	if !nodeDecode(w, r, &req, &req.Schema) {
		return
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	v, ok := n.lockedView(w, req.View, req.Gen)
	if !ok {
		return
	}
	rk, err := n.engine.ClusterRank(r.Context(), v, req.Keywords,
		core.Options{Disjunctive: req.Disjunctive, Parallelism: req.Parallelism})
	if err != nil {
		nodeErrorFor(w, err)
		return
	}
	resp := rankResponse{
		Schema:     Schema,
		Gen:        n.gen,
		ViewSize:   rk.ViewSize,
		Contains:   rk.Contains,
		Matched:    rk.Matched,
		Candidates: make([]wireCandidate, len(rk.Candidates)),
		Stats:      toWireStats(rk.Stats),
	}
	for i, c := range rk.Candidates {
		resp.Candidates[i] = wireCandidate{Doc: c.Doc, Pos: c.Pos, TFs: c.TFs, ByteLen: c.ByteLen}
	}
	nodeJSON(w, http.StatusOK, resp)
}

func (n *Node) handleMaterialize(w http.ResponseWriter, r *http.Request) {
	var req materializeRequest
	if !nodeDecode(w, r, &req, &req.Schema) {
		return
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	v, ok := n.lockedView(w, req.View, req.Gen)
	if !ok {
		return
	}
	out, fetches, err := n.engine.MaterializeAt(r.Context(), v, req.Keywords,
		core.Options{Disjunctive: req.Disjunctive, Parallelism: req.Parallelism}, req.Positions)
	if err != nil {
		nodeErrorFor(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for i := range out {
		pos := out[i].Pos
		line := materializeChunk{Pos: &pos, XML: out[i].Element.XMLString(""), Snippet: out[i].Snippet}
		if err := enc.Encode(line); err != nil {
			return // client gone; the missing done-marker reports truncation
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(materializeChunk{Done: true, Gen: n.gen, Fetches: fetches})
}

// handleSearch serves a complete search on this node — the route for views
// whose referenced documents all live here, where scatter would be wrong
// (a join against a partitioned document) or pointless (one slot holds
// everything needed). Semantics mirror the in-process Efficient pipeline
// exactly: rank the top TopK, stream winners from Offset on with absolute
// ranks.
func (n *Node) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if !nodeDecode(w, r, &req, &req.Schema) {
		return
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	v, ok := n.lockedView(w, req.View, req.Gen)
	if !ok {
		return
	}
	copts := core.Options{K: req.TopK, Disjunctive: req.Disjunctive, Parallelism: req.Parallelism}
	results, cs, err := n.engine.SearchPage(r.Context(), v, req.Keywords, copts, req.Offset)
	if err != nil {
		nodeErrorFor(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for _, res := range results {
		line := searchChunk{Rank: res.Rank, Score: res.Score, TFs: res.TFs,
			XML: res.Element.XMLString(""), Snippet: res.Snippet}
		if err := enc.Encode(line); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	stats := toWireStats(cs)
	_ = enc.Encode(searchChunk{Done: true, Gen: n.gen, Stats: &stats})
}

// toWireStats flattens a core stats block for the wire.
func toWireStats(cs *core.Stats) wireNodeStats {
	if cs == nil {
		return wireNodeStats{}
	}
	return wireNodeStats{
		PDTTimeUS:      cs.PDTTime.Microseconds(),
		EvalTimeUS:     cs.EvalTime.Microseconds(),
		PostTimeUS:     cs.PostTime.Microseconds(),
		PDTNodes:       cs.PDTNodes,
		ViewSize:       cs.ViewResults,
		Matched:        cs.Matched,
		BaseData:       cs.SubtreeFetches,
		Workers:        cs.Workers,
		Candidates:     cs.Candidates,
		ShardsSearched: cs.ShardsSearched,
	}
}

// fromWireStats maps node-reported stats back into core form (time fields
// at microsecond resolution).
func fromWireStats(ws wireNodeStats) core.Stats {
	return core.Stats{
		PDTTime:        time.Duration(ws.PDTTimeUS) * time.Microsecond,
		EvalTime:       time.Duration(ws.EvalTimeUS) * time.Microsecond,
		PostTime:       time.Duration(ws.PostTimeUS) * time.Microsecond,
		PDTNodes:       ws.PDTNodes,
		ViewResults:    ws.ViewSize,
		Matched:        ws.Matched,
		SubtreeFetches: ws.BaseData,
		Workers:        ws.Workers,
		Candidates:     ws.Candidates,
		ShardsSearched: ws.ShardsSearched,
	}
}
