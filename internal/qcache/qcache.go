// Package qcache implements a bounded, concurrency-safe LRU cache for
// ranked query results over virtual views.
//
// Virtual views are never materialized, so the system cannot amortize work
// the way materialized-view engines do; what it can do is avoid recomputing
// an identical (view, keywords, options) query while the document collection
// is unchanged. The cache key therefore captures the full query identity
// (Key). Ingesting a document bumps a generation counter and drops all
// resident entries (Invalidate); the counter protects against the remaining
// race, a computation that started before the bump trying to insert after
// it (PutAt refuses an insert stamped with the pre-bump generation).
package qcache

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"vxml/internal/core"
)

// Key builds the canonical cache key for a query: the view definition text,
// the sorted normalized keyword set, and every option that can change the
// response (top-k, semantics, pipeline). Keywords arrive from arbitrary
// client input (e.g. JSON over HTTP), so every component is length-prefixed
// — no keyword content can collide with a separator or with a differently
// split keyword list.
func Key(viewText string, keywords []string, parts ...string) string {
	kws := make([]string, len(keywords))
	for i, k := range keywords {
		kws[i] = core.NormalizeKeyword(k)
	}
	sort.Strings(kws)
	var b strings.Builder
	writePart := func(p string) {
		b.WriteString(strconv.Itoa(len(p)))
		b.WriteByte(':')
		b.WriteString(p)
	}
	writePart(viewText)
	writePart(strconv.Itoa(len(kws)))
	for _, k := range kws {
		writePart(k)
	}
	for _, p := range parts {
		writePart(p)
	}
	return b.String()
}

// BoolPart canonicalizes a boolean option for use as a Key part.
func BoolPart(v bool) string { return strconv.FormatBool(v) }

// IntPart canonicalizes an integer option for use as a Key part.
func IntPart(v int) string { return strconv.Itoa(v) }

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits          int // lookups answered from the cache
	Misses        int // lookups that fell through to evaluation
	Evictions     int // entries dropped by the LRU or byte bound
	Invalidations int // generation bumps (document ingests)
	Entries       int // entries currently resident
	Capacity      int // maximum resident entries
	Bytes         int // caller-reported bytes currently resident
	MaxBytes      int // maximum resident bytes
	Generation    int // current store generation
}

// Cache is a bounded LRU from query key to a cached value, with
// generation-based invalidation. All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	maxBytes int
	curBytes int
	gen      int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits, misses, evictions, invalidations int
}

type entry struct {
	key   string
	size  int
	value any
}

// DefaultCapacity bounds the cache entry count when the caller does not
// choose one.
const DefaultCapacity = 128

// DefaultMaxBytes bounds the total caller-reported size of resident entries.
// Entry count alone is no bound at all: an unranked (top-k = 0) search over
// a large corpus caches its complete materialized result set, so a handful
// of such entries could otherwise hold arbitrary memory.
const DefaultMaxBytes = 64 << 20

// New returns an empty cache holding at most capacity entries and
// DefaultMaxBytes of caller-reported entry size; capacity <= 0 selects
// DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{capacity: capacity, maxBytes: DefaultMaxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the value cached under key. Every resident entry is current:
// Invalidate drops all entries under the same mutex that guards inserts, so
// a lookup never needs a staleness check.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*entry).value, true
}

// PutAt inserts value under key only if gen is still the current generation,
// and discards it otherwise. Callers that compute a value outside any lock
// shared with Invalidate use the pattern: read Gen before computing, PutAt
// with that generation after — a value whose computation spanned an
// Invalidate is then never inserted, because the bump made its stamp stale.
// size is the caller-reported footprint of value in bytes; a value larger
// than the cache's byte bound is refused rather than evicting everything.
func (c *Cache) PutAt(key string, value any, gen, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen || size > c.maxBytes {
		return
	}
	c.put(key, value, size)
}

// put inserts value under key at the current generation, evicting least
// recently used entries while either bound (entry count, resident bytes) is
// exceeded; the caller holds c.mu and has checked size <= maxBytes, so the
// loop never evicts the entry it just inserted.
func (c *Cache) put(key string, value any, size int) {
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*entry)
		c.curBytes += size - ent.size
		ent.size, ent.value = size, value
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, size: size, value: value})
		c.curBytes += size
	}
	for c.ll.Len() > c.capacity || c.curBytes > c.maxBytes {
		back := c.ll.Back()
		ent := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.curBytes -= ent.size
		c.evictions++
	}
}

// Gen returns the current generation, for stamping PutAt calls.
func (c *Cache) Gen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Invalidate bumps the generation and drops every resident entry. Call it
// whenever the underlying document collection changes. The bump (not the
// drop) is what keeps in-flight computations out: a PutAt stamped with the
// old generation is refused, so a result computed across the change can
// never be inserted afterwards. Dropping eagerly releases the entries'
// memory to the GC immediately — after a bump every resident entry is dead
// weight, reachable only by an exact-key probe.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.invalidations++
	c.ll.Init()
	clear(c.items)
	c.curBytes = 0
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.ll.Len(),
		Capacity:      c.capacity,
		Bytes:         c.curBytes,
		MaxBytes:      c.maxBytes,
		Generation:    c.gen,
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
