package qcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestKeyCanonicalization(t *testing.T) {
	a := Key("view", []string{"XML", "search"}, IntPart(10), BoolPart(false))
	b := Key("view", []string{"search", " xml "}, IntPart(10), BoolPart(false))
	if a != b {
		t.Error("keys should be order- and case-insensitive over keywords")
	}
	c := Key("view", []string{"xml", "search"}, IntPart(5), BoolPart(false))
	if a == c {
		t.Error("different options must produce different keys")
	}
	d := Key("other view", []string{"xml", "search"}, IntPart(10), BoolPart(false))
	if a == d {
		t.Error("different views must produce different keys")
	}
}

// TestKeyCollisionResistance: keywords are arbitrary client input, so no
// content may collide with the encoding of a differently split query.
func TestKeyCollisionResistance(t *testing.T) {
	cases := [][2]struct {
		view string
		kws  []string
	}{
		{{"v", []string{"a\x01b"}}, {"v", []string{"a", "b"}}},
		{{"v", []string{"a\x00b"}}, {"v", []string{"a", "b"}}},
		{{"v", []string{"a", "b"}}, {"v", []string{"ab"}}},
		{{"va", []string{"b"}}, {"v", []string{"ab"}}},
		{{"v", []string{"a\x00", "b"}}, {"v", []string{"a", "\x00b"}}},
	}
	for i, c := range cases {
		a := Key(c[0].view, c[0].kws, IntPart(0))
		b := Key(c[1].view, c[1].kws, IntPart(0))
		if a == b {
			t.Errorf("case %d: %q/%q and %q/%q collide: %q", i, c[0].view, c[0].kws, c[1].view, c[1].kws, a)
		}
	}
}

// putNow inserts a small entry at the current generation — the pattern
// production code uses via PutAt when no computation spans the insert.
func putNow(c *Cache, key string, v any) { c.PutAt(key, v, c.Gen(), 1) }

func TestGetPutAndLRUEviction(t *testing.T) {
	c := New(2)
	putNow(c, "a", 1)
	putNow(c, "b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	putNow(c, "c", 3) // evicts b (least recently used after the Get(a) touch)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived eviction")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 2 {
		t.Errorf("Entries = %d, want 2", st.Entries)
	}
}

func TestGenerationInvalidation(t *testing.T) {
	c := New(4)
	putNow(c, "k", "v")
	c.Invalidate()
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry should be stale after Invalidate")
	}
	if c.Len() != 0 {
		t.Errorf("stale entry not removed on lookup: Len = %d", c.Len())
	}
	putNow(c, "k", "v2")
	if v, ok := c.Get("k"); !ok || v.(string) != "v2" {
		t.Errorf("re-inserted entry missing: %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Generation != 1 {
		t.Errorf("Invalidations = %d, Generation = %d", st.Invalidations, st.Generation)
	}
}

func TestPutAtDiscardsStaleGeneration(t *testing.T) {
	c := New(4)
	gen := c.Gen()
	c.Invalidate() // an ingest lands between the Gen read and the insert
	c.PutAt("k", "stale", gen, 1)
	if _, ok := c.Get("k"); ok {
		t.Fatal("PutAt inserted a value stamped with a stale generation")
	}
	gen = c.Gen()
	c.PutAt("k", "fresh", gen, 1)
	if v, ok := c.Get("k"); !ok || v.(string) != "fresh" {
		t.Errorf("current-generation PutAt missing: %v, %v", v, ok)
	}
}

func TestPutRefreshesExistingKey(t *testing.T) {
	c := New(2)
	putNow(c, "k", 1)
	putNow(c, "k", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("k"); v.(int) != 2 {
		t.Errorf("value = %v, want 2", v)
	}
}

// TestByteBound: resident bytes are bounded independently of entry count,
// and an oversized value is refused rather than evicting everything.
func TestByteBound(t *testing.T) {
	c := New(1024)
	c.maxBytes = 100
	c.PutAt("big", "x", c.Gen(), 101) // over the bound: refused
	if c.Len() != 0 {
		t.Fatal("oversized entry was inserted")
	}
	for i := 0; i < 5; i++ {
		c.PutAt(fmt.Sprintf("k%d", i), i, c.Gen(), 40)
	}
	st := c.Stats()
	if st.Bytes > 100 {
		t.Errorf("resident bytes %d exceed bound 100", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("byte pressure produced no evictions")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2 (2x40 fits, 3x40 does not)", c.Len())
	}
	// Updating a key in place adjusts the byte account instead of leaking.
	c.PutAt("k4", 99, c.Gen(), 60)
	if st := c.Stats(); st.Bytes > 100 {
		t.Errorf("in-place update leaked bytes: %d", st.Bytes)
	}
	// Invalidate drops every entry and releases its bytes immediately.
	c.Invalidate()
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Errorf("Invalidate left residue: %d bytes, %d entries", st.Bytes, st.Entries)
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	c := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%40)
				switch i % 5 {
				case 0:
					putNow(c, key, i)
				case 4:
					if g == 0 && i%100 == 4 {
						c.Invalidate()
					}
				default:
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Errorf("capacity exceeded: %d", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("no lookups recorded")
	}
}
