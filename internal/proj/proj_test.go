package proj

import (
	"strings"
	"testing"

	"vxml/internal/qpt"
	"vxml/internal/xmltree"
	"vxml/internal/xq"
)

const booksXML = `<books>
  <book><isbn>111</isbn><title>XML Basics</title><year>1996</year>
    <noise><deep>irrelevant</deep></noise></book>
  <book><isbn>222</isbn><title>Old Book</title><year>1990</year></book>
</books>`

const view = `
for $b in fn:doc(books.xml)/books//book
where $b/year > 1995
return <e>{$b/title}</e>`

func projected(t *testing.T) (*xmltree.Document, *xmltree.Document) {
	t.Helper()
	doc, err := xmltree.ParseString(booksXML, "books.xml", 1)
	if err != nil {
		t.Fatal(err)
	}
	q := xq.MustParse(view)
	qpts, err := qpt.Generate(q.Body, q.Functions)
	if err != nil {
		t.Fatal(err)
	}
	return doc, Project(doc, qpts[0])
}

func TestProjectKeepsPathMatches(t *testing.T) {
	doc, out := projected(t)
	if out.Root == nil {
		t.Fatal("empty projection")
	}
	// PROJ uses isolated path semantics: BOTH books survive (no twig
	// pruning by the year predicate), with title and year children.
	if len(out.Root.Children) != 2 {
		t.Fatalf("books kept = %d, want 2 (no twig semantics)", len(out.Root.Children))
	}
	text := out.Root.XMLString("")
	if !strings.Contains(text, "XML Basics") || !strings.Contains(text, "1990") {
		t.Errorf("projection lost matched values: %s", text)
	}
	if strings.Contains(text, "irrelevant") {
		t.Errorf("projection kept non-matching subtree: %s", text)
	}
	if Size(out) >= doc.Root.NodeCount() {
		t.Errorf("projection did not shrink: %d vs %d", Size(out), doc.Root.NodeCount())
	}
}

func TestProjectValuesOnlyOnMatches(t *testing.T) {
	_, out := projected(t)
	// isbn is not referenced by the view: it must be pruned entirely.
	found := false
	out.Root.Walk(func(n *xmltree.Node) {
		if n.Tag == "isbn" {
			found = true
		}
	})
	if found {
		t.Error("isbn should not be projected (not on any QPT path)")
	}
}

func TestProjectEmpty(t *testing.T) {
	doc, err := xmltree.ParseString("<other><x>1</x></other>", "books.xml", 1)
	if err != nil {
		t.Fatal(err)
	}
	q := xq.MustParse(view)
	qpts, _ := qpt.Generate(q.Body, q.Functions)
	out := Project(doc, qpts[0])
	if out.Root != nil || Size(out) != 0 {
		t.Errorf("projection of unrelated doc should be empty, got %d nodes", Size(out))
	}
}

func TestProjectDescendantAxis(t *testing.T) {
	doc, err := xmltree.ParseString(
		`<books><shelf><book><title>Deep</title><year>2000</year></book></shelf></books>`,
		"books.xml", 1)
	if err != nil {
		t.Fatal(err)
	}
	q := xq.MustParse(view)
	qpts, _ := qpt.Generate(q.Body, q.Functions)
	out := Project(doc, qpts[0])
	text := out.Root.XMLString("")
	// //book matches through shelf; shelf is kept as a structural ancestor
	// but contributes no value.
	if !strings.Contains(text, "<shelf>") || !strings.Contains(text, "Deep") {
		t.Errorf("descendant projection wrong: %s", text)
	}
}
