// Package proj implements the "Proj" comparator of the paper's evaluation
// (§5.1): projecting XML documents in the style of Marian & Siméon
// [VLDB'03]. Unlike PDT generation it (a) treats the QPT as a set of
// isolated root-to-node paths with no twig (mandatory-edge) semantics,
// (b) materializes every projected element, and (c) scans the entire base
// document rather than probing indices — the three differences the paper
// calls out in §4. The benchmark, like the paper, times projection only
// ("Proj merely characterizes the cost of generating projected
// documents").
package proj

import (
	"vxml/internal/pathindex"
	"vxml/internal/qpt"
	"vxml/internal/xmltree"
)

// Project scans the document and keeps every element whose root path
// matches one of the QPT's root-to-node paths (isolated path semantics: no
// mandatory-edge or predicate pruning), along with the ancestors needed to
// preserve the hierarchy. Matched elements keep their values.
func Project(doc *xmltree.Document, q *qpt.QPT) *xmltree.Document {
	patterns := make([][]pathindex.Step, 0)
	for _, n := range q.Nodes() {
		patterns = append(patterns, n.StepsFromRoot())
	}

	var project func(n *xmltree.Node, prefix string) *xmltree.Node
	project = func(n *xmltree.Node, prefix string) *xmltree.Node {
		path := prefix + "/" + n.Tag
		matched := false
		for _, p := range patterns {
			if pathindex.MatchPath(p, path) {
				matched = true
				break
			}
		}
		var kids []*xmltree.Node
		for _, c := range n.Children {
			if pc := project(c, path); pc != nil {
				kids = append(kids, pc)
			}
		}
		if !matched && len(kids) == 0 {
			return nil
		}
		out := &xmltree.Node{Tag: n.Tag, ID: n.ID, ByteLen: n.ByteLen, Children: kids}
		for _, k := range kids {
			k.Parent = out
		}
		if matched {
			out.Value = n.Value
		}
		return out
	}
	root := project(doc.Root, "")
	if root == nil {
		return &xmltree.Document{Name: doc.Name, DocID: doc.DocID}
	}
	return &xmltree.Document{Name: doc.Name, Root: root, DocID: doc.DocID}
}

// Size reports the number of elements in a projected document.
func Size(doc *xmltree.Document) int {
	if doc.Root == nil {
		return 0
	}
	return doc.Root.NodeCount()
}
