// Package testkit holds the randomized-corpus generators and
// oracle-comparison helpers shared by the equivalence suites: the root
// package's parallel/mutation/stream/cache tests and internal/cluster's
// distributed byte-identity tests all build corpora and compare ranked
// result lists through this one vocabulary, so "byte-identical" means the
// same thing everywhere it is asserted.
//
// The helpers are deliberately engine-agnostic: corpus builders write
// through the narrow Target/Mutator interfaces (satisfied by
// *vxml.Database directly and by thin adapters over a cluster
// coordinator), and the comparators work on []vxml.Result no matter which
// delivery path produced it.
package testkit

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"maps"
	"math/rand"
	"runtime"
	"slices"
	"strings"
	"testing"
	"time"

	"vxml"
	"vxml/internal/benchkit"
	"vxml/internal/inex"
)

// Target is anything documents can be loaded into. *vxml.Database
// satisfies it directly; distributed tests adapt a coordinator.
type Target interface {
	Add(name, xml string) error
}

// Mutator extends Target with the rest of the document lifecycle.
type Mutator interface {
	Target
	Replace(name, xml string) error
	Delete(name string) error
}

// Vocabulary deliberately overlaps the query keywords so term frequencies
// vary per article; "copper" and "quartz" are the planted search terms.
var Vocabulary = []string{
	"copper", "quartz", "basalt", "granite", "mica", "shale",
	"copper", "quartz", "system", "survey", "archive", "ledger",
}

// RandomArticle builds one <article> with a title, author, year and a
// word-soup body drawn from the vocabulary.
func RandomArticle(rng *rand.Rand, id int) string {
	var body strings.Builder
	for i, n := 0, 3+rng.Intn(12); i < n; i++ {
		if i > 0 {
			body.WriteByte(' ')
		}
		body.WriteString(Vocabulary[rng.Intn(len(Vocabulary))])
	}
	return fmt.Sprintf(
		`<article><fm><tl>title %d %s</tl><au>author%d</au><yr>%d</yr></fm><bdy>%s</bdy></article>`,
		id, Vocabulary[rng.Intn(len(Vocabulary))], rng.Intn(6), 1988+rng.Intn(12), body.String())
}

// RandomPartDoc builds one <books> document of 1..4 random articles.
func RandomPartDoc(rng *rand.Rand, salt int) string {
	var articles strings.Builder
	for a, n := 0, 1+rng.Intn(4); a < n; a++ {
		articles.WriteString(RandomArticle(rng, salt*100+a))
	}
	return "<books>" + articles.String() + "</books>"
}

// AuthorsXML renders the fixed six-author catalog document the join views
// reference, salted with vocabulary words so it scores like the rest of
// the corpus.
func AuthorsXML(rng *rand.Rand) string {
	var authors strings.Builder
	authors.WriteString("<authors>")
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&authors, `<author><name>author%d</name><affil>inst %s %d</affil></author>`,
			i, Vocabulary[rng.Intn(len(Vocabulary))], i)
	}
	authors.WriteString("</authors>")
	return authors.String()
}

// FillEqCorpus loads nDocs "part-NN.xml" documents plus one fixed
// authors.xml into the target. Roughly every fifth part document is an
// exact copy of an earlier one, planting guaranteed score ties that
// exercise the deterministic tie-break.
func FillEqCorpus(t testing.TB, rng *rand.Rand, nDocs int, into Target) {
	t.Helper()
	var prev string
	for d := 0; d < nDocs; d++ {
		var doc string
		if d > 0 && d%5 == 4 {
			doc = prev // exact duplicate: same articles, same scores
		} else {
			var articles strings.Builder
			for a, n := 0, 1+rng.Intn(6); a < n; a++ {
				articles.WriteString(RandomArticle(rng, d*100+a))
			}
			doc = "<books>" + articles.String() + "</books>"
		}
		prev = doc
		if err := into.Add(fmt.Sprintf("part-%02d.xml", d), doc); err != nil {
			t.Fatal(err)
		}
	}
	if err := into.Add("authors.xml", AuthorsXML(rng)); err != nil {
		t.Fatal(err)
	}
}

// BuildEqCorpus fills a fresh single-process database (FillEqCorpus into
// vxml.Open).
func BuildEqCorpus(t testing.TB, rng *rand.Rand, nDocs int) *vxml.Database {
	t.Helper()
	db := vxml.Open()
	FillEqCorpus(t, rng, nDocs, db)
	return db
}

// EqViews are the view shapes each corpus is searched through: a
// collection selection, a collection view joined to a fixed document, a
// single-document selection (the legacy shape), and a single-clause
// equality where (the sequential path takes the evaluator's hash-join
// shortcut, the parallel path partitions the loop — outputs must still
// match exactly).
var EqViews = []string{
	`for $a in fn:collection("part-*")/books//article
	 where $a/fm/yr > 1993
	 return <art>{$a/fm/tl}, {$a/bdy}</art>`,

	`for $a in fn:collection("part-*")/books//article
	 return <rec><t>{$a/fm/tl}</t>,
	   {for $u in fn:doc(authors.xml)/authors//author
	    where $u/name = $a/fm/au
	    return <inst>{$u/affil}</inst>},
	   {$a/bdy}</rec>`,

	`for $a in fn:doc(part-00.xml)/books//article
	 where $a/fm/yr > 1990
	 return <art>{$a/fm/tl}, {$a/bdy}</art>`,

	`for $a in fn:collection("part-*")/books//article
	 where $a/fm/au = "author2"
	 return <art>{$a/fm/tl}, {$a/bdy}</art>`,
}

// MutViews are the shapes the lifecycle trials are searched through: a
// collection selection (replacements re-enter enumeration at their new
// position) and a collection-to-fixed-document join (exercises the
// evaluator's join paths over a mutated catalog).
var MutViews = []string{
	`for $a in fn:collection("part-*")/books//article
	 where $a/fm/yr > 1990
	 return <art>{$a/fm/tl}, {$a/bdy}</art>`,

	`for $a in fn:collection("part-*")/books//article
	 return <rec><t>{$a/fm/tl}</t>,
	   {for $u in fn:doc(authors.xml)/authors//author
	    where $u/name = $a/fm/au
	    return <inst>{$u/affil}</inst>},
	   {$a/bdy}</rec>`,
}

// KeywordsFor draws 1-3 of the planted query keywords.
func KeywordsFor(rng *rand.Rand) []string {
	all := []string{"copper", "quartz", "survey"}
	return all[:1+rng.Intn(len(all))]
}

// MutateRandomly drives the target through 12..30 random lifecycle
// operations over a bounded name pool, guaranteeing at least one replace
// and one delete, and returns the final content of every name still
// present. seed, when non-nil, names the part documents the target already
// holds (with their content), so replaces and deletes hit the existing
// corpus and generated names never collide with it.
func MutateRandomly(t testing.TB, db Mutator, rng *rand.Rand, seed map[string]string) map[string]string {
	t.Helper()
	final := map[string]string{}
	var present []string
	for _, name := range slices.Sorted(maps.Keys(seed)) {
		final[name] = seed[name]
		present = append(present, name)
	}
	addDoc := func() {
		if len(present) >= 8 {
			return
		}
		name := fmt.Sprintf("part-%02d.xml", len(final)+len(present)*17+rng.Intn(90))
		if _, ok := final[name]; ok {
			return
		}
		doc := RandomPartDoc(rng, len(present))
		if err := db.Add(name, doc); err != nil {
			t.Fatal(err)
		}
		final[name] = doc
		present = append(present, name)
	}
	replaceDoc := func() {
		if len(present) == 0 {
			return
		}
		name := present[rng.Intn(len(present))]
		doc := RandomPartDoc(rng, 50+rng.Intn(50))
		if err := db.Replace(name, doc); err != nil {
			t.Fatal(err)
		}
		final[name] = doc
	}
	deleteDoc := func() {
		if len(present) < 2 {
			return
		}
		i := rng.Intn(len(present))
		name := present[i]
		if err := db.Delete(name); err != nil {
			t.Fatal(err)
		}
		delete(final, name)
		present = append(present[:i], present[i+1:]...)
	}
	addDoc()
	addDoc()
	for op, n := 0, 12+rng.Intn(18); op < n; op++ {
		switch rng.Intn(4) {
		case 0, 1:
			addDoc()
		case 2:
			replaceDoc()
		default:
			deleteDoc()
		}
	}
	replaceDoc() // guarantee the lifecycle actually ran
	deleteDoc()
	return final
}

// SearchSetting is one (approach, parallelism, cache) cell an equivalence
// must hold over. The comparator pipelines run sequentially by
// construction, so only Efficient varies parallelism; they also report no
// snippets, by design, which Snippets records for the comparison.
type SearchSetting struct {
	Label    string
	Approach vxml.Approach
	Parallel int
	Cache    bool
	Snippets bool
}

// MutSettings enumerates every setting cell the lifecycle equivalence
// runs under.
var MutSettings = []SearchSetting{
	{"efficient/seq/nocache", vxml.Efficient, 1, false, true},
	{"efficient/par/nocache", vxml.Efficient, 0, false, true},
	{"efficient/seq/cache", vxml.Efficient, 1, true, true},
	{"efficient/par/cache", vxml.Efficient, 0, true, true},
	{"baseline/nocache", vxml.Baseline, 1, false, false},
	{"baseline/cache", vxml.Baseline, 1, true, false},
	{"gtp/nocache", vxml.GTPTermJoin, 1, false, false},
	{"gtp/cache", vxml.GTPTermJoin, 1, true, false},
}

// MustEqualResults fails unless a and b are byte-identical result lists.
func MustEqualResults(t testing.TB, label string, a, b []vxml.Result) {
	t.Helper()
	MustEqualResultsOpt(t, label, a, b, true)
}

// MustEqualResultsOpt optionally skips the snippet comparison (the
// Baseline and GTP comparators report no snippets, by design).
func MustEqualResultsOpt(t testing.TB, label string, a, b []vxml.Result, snippets bool) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d results vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Rank != b[i].Rank || a[i].Score != b[i].Score {
			t.Fatalf("%s: result %d rank/score (%d, %v) vs (%d, %v)", label, i, a[i].Rank, a[i].Score, b[i].Rank, b[i].Score)
		}
		if a[i].XML != b[i].XML {
			t.Fatalf("%s: result %d XML differs:\n%s\nvs\n%s", label, i, a[i].XML, b[i].XML)
		}
		if snippets && a[i].Snippet != b[i].Snippet {
			t.Fatalf("%s: result %d snippet %q vs %q", label, i, a[i].Snippet, b[i].Snippet)
		}
		if len(a[i].TF) != len(b[i].TF) {
			t.Fatalf("%s: result %d TF sizes differ", label, i)
		}
		for k, v := range a[i].TF {
			if b[i].TF[k] != v {
				t.Fatalf("%s: result %d TF[%q] = %d vs %d", label, i, k, v, b[i].TF[k])
			}
		}
	}
}

// RenderResults fingerprints a ranked result list byte-for-byte (rank,
// score, materialized XML, snippet; TF maps are compared separately with
// SameTF).
func RenderResults(results []vxml.Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "#%d %.12f\n", r.Rank, r.Score)
		b.WriteString(r.XML)
		b.WriteByte('\n')
		b.WriteString(r.Snippet)
		b.WriteByte('\n')
	}
	return b.String()
}

// SameTF reports whether two equally long result lists carry identical
// TF maps.
func SameTF(a, b []vxml.Result) bool {
	for i := range a {
		if len(a[i].TF) != len(b[i].TF) {
			return false
		}
		for k, v := range a[i].TF {
			if b[i].TF[k] != v {
				return false
			}
		}
	}
	return true
}

// CollectResults drains a Results sequence, failing the test on any
// mid-stream error.
func CollectResults(t testing.TB, label string, seq iter.Seq2[vxml.Result, error]) []vxml.Result {
	t.Helper()
	var out []vxml.Result
	for r, err := range seq {
		if err != nil {
			t.Fatalf("%s: streaming: %v", label, err)
		}
		out = append(out, r)
	}
	return out
}

// CollectPages pages through a ranking pageSize results at a time via the
// fetch callback and concatenates, failing if the pagination never
// terminates. fetch receives base with Offset/TopK set for one page.
func CollectPages(t testing.TB, label string, base vxml.Options, pageSize int, fetch func(o *vxml.Options) ([]vxml.Result, error)) []vxml.Result {
	t.Helper()
	var out []vxml.Result
	for page := 0; ; page++ {
		if page > 1000 {
			t.Fatalf("%s: pagination did not terminate", label)
		}
		o := base
		o.Offset, o.TopK = page*pageSize, pageSize
		results, err := fetch(&o)
		if err != nil {
			t.Fatalf("%s page %d: %v", label, page, err)
		}
		out = append(out, results...)
		if len(results) < pageSize {
			return out
		}
	}
}

// KeywordPool mixes corpus-frequent terms (inex vocabulary roots and the
// benchkit selectivity sets) with words that may not occur at all, so
// properties drawn from it are exercised on empty, selective and broad
// result sets alike.
var KeywordPool = []string{
	"system", "data", "model", "network", "algorithm", "query", "index",
	"thomas", "control", "fuzzy", "neural", "parallel", "ieee", "computing",
	"moore", "burnett", "zebra", "qwxyz",
}

// RandomKeywords draws 1-3 distinct keywords from KeywordPool.
func RandomKeywords(rng *rand.Rand) []string {
	n := 1 + rng.Intn(3)
	picks := rng.Perm(len(KeywordPool))[:n]
	kws := make([]string, n)
	for i, p := range picks {
		kws[i] = KeywordPool[p]
	}
	return kws
}

// CorpusDB loads the generated benchkit corpus into a Database and
// compiles the experiment view.
func CorpusDB(t testing.TB, seed int64) (*vxml.Database, *vxml.View) {
	t.Helper()
	p := benchkit.Default()
	p.UnitBytes = 16 << 10
	p.SizeUnits = 2
	p.Seed = seed
	corpus := inex.Generate(inex.Options{
		TargetBytes: p.TargetBytes(),
		Seed:        p.Seed,
		Partitions:  p.JoinPartitions,
		ElemSizeX:   p.ElemSizeX,
	})
	db := vxml.Open()
	for _, doc := range corpus.Docs() {
		db.MustAdd(doc.Name, doc.Root.XMLString(""))
	}
	view, err := db.DefineView(p.ViewText())
	if err != nil {
		t.Fatal(err)
	}
	return db, view
}

// WantCtxErr asserts err wraps exactly the expected context error.
func WantCtxErr(t testing.TB, label string, err, want error) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: expected an error wrapping %v, got nil", label, want)
	}
	if !errors.Is(err, want) {
		t.Fatalf("%s: error %q does not wrap %v", label, err, want)
	}
	if errors.Is(err, context.Canceled) && errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("%s: error %q wraps both context errors", label, err)
	}
}

// WaitGoroutines waits for the goroutine count to settle back to at most
// limit (worker pools drain cooperatively, so a just-canceled search may
// briefly still be winding down).
func WaitGoroutines(t testing.TB, label string, limit int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= limit {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("%s: %d goroutines still alive (limit %d)\n%s",
				label, n, limit, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
