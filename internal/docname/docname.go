// Package docname defines the document-name pattern language used by
// collection views: fn:collection("part-*") ranges over every document
// whose name matches the pattern, turning a corpus of many documents into
// one logical input sequence. A pattern is a document name in which each
// '*' matches any (possibly empty) run of characters; a name without '*'
// is an exact reference. The language is deliberately tiny — patterns are
// compared against registered document names, never against file systems.
package docname

import "strings"

// IsPattern reports whether s contains a wildcard and therefore names a
// collection of documents rather than a single document.
func IsPattern(s string) bool { return strings.Contains(s, "*") }

// Match reports whether name matches pattern, where each '*' in pattern
// matches any (possibly empty) substring. A pattern without '*' matches
// only the identical name.
func Match(pattern, name string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == name
	}
	if !strings.HasPrefix(name, parts[0]) {
		return false
	}
	name = name[len(parts[0]):]
	last := parts[len(parts)-1]
	for _, part := range parts[1 : len(parts)-1] {
		if part == "" {
			continue
		}
		i := strings.Index(name, part)
		if i < 0 {
			return false
		}
		name = name[i+len(part):]
	}
	return strings.HasSuffix(name, last) && len(name) >= len(last)
}
