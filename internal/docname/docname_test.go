package docname

import "testing"

func TestMatch(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"books.xml", "books.xml", true},
		{"books.xml", "books2.xml", false},
		{"*", "anything", true},
		{"*", "", true},
		{"part-*", "part-007.xml", true},
		{"part-*", "part-", true},
		{"part-*", "par", false},
		{"*.xml", "books.xml", true},
		{"*.xml", "books.json", false},
		{"part-*.xml", "part-3.xml", true},
		{"part-*.xml", "part-3.json", false},
		{"a*b*c", "abc", true},
		{"a*b*c", "aXXbYYc", true},
		{"a*b*c", "acb", false},
		{"a*b*c", "ab", false},
		// overlapping middle/suffix must not double-count characters
		{"a*bb", "abb", true},
		{"a*bb", "ab", false},
		{"ab*ab", "abab", true},
		{"ab*ab", "aba", false},
	}
	for _, c := range cases {
		if got := Match(c.pattern, c.name); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
	if IsPattern("books.xml") || !IsPattern("part-*") {
		t.Errorf("IsPattern misclassified")
	}
}
