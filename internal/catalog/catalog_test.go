package catalog

import (
	"fmt"
	"sync"
	"testing"

	"vxml/internal/xmltree"
)

func TestKeyCanonicalization(t *testing.T) {
	a := Key("view", []string{"XML", "search"}, IntPart(10), BoolPart(false))
	b := Key("view", []string{"search", " xml "}, IntPart(10), BoolPart(false))
	if a != b {
		t.Error("keys should be order- and case-insensitive over keywords")
	}
	c := Key("view", []string{"xml", "search"}, IntPart(5), BoolPart(false))
	if a == c {
		t.Error("different options must produce different keys")
	}
	d := Key("other view", []string{"xml", "search"}, IntPart(10), BoolPart(false))
	if a == d {
		t.Error("different views must produce different keys")
	}
}

// TestKeyCollisionResistance: keywords are arbitrary client input, so no
// content may collide with the encoding of a differently split query.
func TestKeyCollisionResistance(t *testing.T) {
	cases := [][2]struct {
		view string
		kws  []string
	}{
		{{"v", []string{"a\x01b"}}, {"v", []string{"a", "b"}}},
		{{"v", []string{"a\x00b"}}, {"v", []string{"a", "b"}}},
		{{"v", []string{"a", "b"}}, {"v", []string{"ab"}}},
		{{"va", []string{"b"}}, {"v", []string{"ab"}}},
		{{"v", []string{"a\x00", "b"}}, {"v", []string{"a", "\x00b"}}},
	}
	for i, c := range cases {
		a := Key(c[0].view, c[0].kws, IntPart(0))
		b := Key(c[1].view, c[1].kws, IntPart(0))
		if a == b {
			t.Errorf("case %d: %q/%q and %q/%q collide: %q", i, c[0].view, c[0].kws, c[1].view, c[1].kws, a)
		}
	}
}

// putNow inserts a small entry at the current generation — the pattern
// production code uses via PutAt when no computation spans the insert.
func putNow(c *Catalog, key string, v any) { c.PutAt(key, v, c.Gen(), 1) }

func TestGetPutAndLRUEviction(t *testing.T) {
	c := New(2)
	putNow(c, "a", 1)
	putNow(c, "b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	putNow(c, "c", 3) // evicts b (least recently used after the Get(a) touch)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived eviction")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 2 {
		t.Errorf("Entries = %d, want 2", st.Entries)
	}
}

func TestGenerationInvalidation(t *testing.T) {
	c := New(4)
	putNow(c, "k", "v")
	c.Invalidate()
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry should be stale after Invalidate")
	}
	if c.Len() != 0 {
		t.Errorf("stale entry not removed on lookup: Len = %d", c.Len())
	}
	putNow(c, "k", "v2")
	if v, ok := c.Get("k"); !ok || v.(string) != "v2" {
		t.Errorf("re-inserted entry missing: %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Generation != 1 {
		t.Errorf("Invalidations = %d, Generation = %d", st.Invalidations, st.Generation)
	}
}

func TestPutAtDiscardsStaleGeneration(t *testing.T) {
	c := New(4)
	gen := c.Gen()
	c.Invalidate() // an ingest lands between the Gen read and the insert
	c.PutAt("k", "stale", gen, 1)
	if _, ok := c.Get("k"); ok {
		t.Fatal("PutAt inserted a value stamped with a stale generation")
	}
	gen = c.Gen()
	c.PutAt("k", "fresh", gen, 1)
	if v, ok := c.Get("k"); !ok || v.(string) != "fresh" {
		t.Errorf("current-generation PutAt missing: %v, %v", v, ok)
	}
}

func TestPutRefreshesExistingKey(t *testing.T) {
	c := New(2)
	putNow(c, "k", 1)
	putNow(c, "k", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("k"); v.(int) != 2 {
		t.Errorf("value = %v, want 2", v)
	}
}

// TestByteBound: resident bytes are bounded independently of entry count,
// and an oversized value is refused rather than evicting everything.
func TestByteBound(t *testing.T) {
	c := New(1024)
	c.maxBytes = 100
	c.PutAt("big", "x", c.Gen(), 101) // over the bound: refused
	if c.Len() != 0 {
		t.Fatal("oversized entry was inserted")
	}
	for i := 0; i < 5; i++ {
		c.PutAt(fmt.Sprintf("k%d", i), i, c.Gen(), 40)
	}
	st := c.Stats()
	if st.Bytes > 100 {
		t.Errorf("resident bytes %d exceed bound 100", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("byte pressure produced no evictions")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2 (2x40 fits, 3x40 does not)", c.Len())
	}
	// Updating a key in place adjusts the byte account instead of leaking.
	c.PutAt("k4", 99, c.Gen(), 60)
	if st := c.Stats(); st.Bytes > 100 {
		t.Errorf("in-place update leaked bytes: %d", st.Bytes)
	}
	// Invalidate drops every entry and releases its bytes immediately.
	c.Invalidate()
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Errorf("Invalidate left residue: %d bytes, %d entries", st.Bytes, st.Entries)
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	c := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%40)
				switch i % 5 {
				case 0:
					putNow(c, key, i)
				case 4:
					if g == 0 && i%100 == 4 {
						c.Invalidate()
					}
				default:
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Errorf("capacity exceeded: %d", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("no lookups recorded")
	}
}

func TestRegisterStableIDs(t *testing.T) {
	c := New(0)
	a := c.Register("view a")
	b := c.Register("view b")
	if a == b {
		t.Fatalf("distinct views share ID %q", a)
	}
	if got := c.Register("view a"); got != a {
		t.Errorf("re-registration changed ID: %q -> %q", a, got)
	}
	if got := c.IDOf("view a"); got != a {
		t.Errorf("IDOf = %q, want %q", got, a)
	}
	if got := c.IDOf("never seen"); got != "" {
		t.Errorf("IDOf(unregistered) = %q, want empty", got)
	}
	if st := c.Stats(); st.Views != 2 {
		t.Errorf("Views = %d, want 2", st.Views)
	}
}

func TestSkeletonGenerationStamping(t *testing.T) {
	c := New(0)
	forest := []*xmltree.Node{{Tag: "r"}}
	gen := c.Gen()
	c.Invalidate() // a mutation lands mid-evaluation: the store must refuse
	c.StoreSkeleton("v", gen, forest, 10)
	if _, _, ok := c.Skeleton("v"); ok {
		t.Fatal("stale-generation skeleton was stored")
	}
	gen = c.Gen()
	c.StoreSkeleton("v", gen, forest, 10)
	sk, id, ok := c.Skeleton("v")
	if !ok || len(sk.Results) != 1 || id == "" {
		t.Fatalf("live skeleton missing: ok=%v id=%q", ok, id)
	}
	if st := c.Stats(); st.Skeletons != 1 || st.ArtifactBytes != 10 {
		t.Errorf("Skeletons=%d ArtifactBytes=%d, want 1/10", st.Skeletons, st.ArtifactBytes)
	}
	c.Invalidate()
	if _, _, ok := c.Skeleton("v"); ok {
		t.Error("skeleton survived invalidation")
	}
	if st := c.Stats(); st.ArtifactBytes != 0 {
		t.Errorf("invalidation leaked artifact bytes: %d", st.ArtifactBytes)
	}
}

func TestSkeletonBudgetRefusal(t *testing.T) {
	c := New(0)
	c.SetPolicy(0, 100)
	c.StoreSkeleton("a", c.Gen(), []*xmltree.Node{{Tag: "a"}}, 80)
	c.StoreSkeleton("b", c.Gen(), []*xmltree.Node{{Tag: "b"}}, 30) // would overflow
	if _, _, ok := c.Skeleton("b"); ok {
		t.Error("over-budget skeleton was stored")
	}
	if _, _, ok := c.Skeleton("a"); !ok {
		t.Error("in-budget skeleton missing")
	}
}

func TestPromotionPolicyAndChurn(t *testing.T) {
	c := New(0)
	c.SetPolicy(2, 1000)
	if c.AccessDirect("v") {
		t.Fatal("promotable after a single hit with threshold 2")
	}
	if !c.AccessDirect("v") {
		t.Fatal("not promotable after reaching the threshold")
	}
	mv := &MatView{Trees: []*xmltree.Node{{Tag: "r"}}, ByteLens: []int{1}, Tokens: map[string][]TokenCount{}, Bytes: 50}
	if !c.StoreMaterialized("v", c.Gen(), mv) {
		t.Fatal("in-budget materialization refused")
	}
	if got, _, ok := c.Materialized("v"); !ok || got != mv {
		t.Fatal("live materialized view missing")
	}
	if c.AccessDirect("v") {
		t.Error("already-materialized view reported promotable")
	}
	st := c.Stats()
	if st.Promotions != 1 || st.Materialized != 1 {
		t.Errorf("Promotions=%d Materialized=%d, want 1/1", st.Promotions, st.Materialized)
	}

	// A mutation demotes and doubles the re-promotion bar.
	c.Invalidate()
	if _, _, ok := c.Materialized("v"); ok {
		t.Fatal("materialized view survived invalidation")
	}
	st = c.Stats()
	if st.Demotions != 1 || st.ArtifactBytes != 0 {
		t.Errorf("Demotions=%d ArtifactBytes=%d, want 1/0", st.Demotions, st.ArtifactBytes)
	}
	hits := 0
	for !c.AccessDirect("v") {
		hits++
		if hits > 10 {
			t.Fatal("view never became promotable again")
		}
	}
	if hits+1 != 4 { // threshold 2 doubled once by churn
		t.Errorf("re-promotion after %d hits, want 4", hits+1)
	}
}

func TestStoreMaterializedOverBudgetCountsChurn(t *testing.T) {
	c := New(0)
	c.SetPolicy(1, 100)
	c.AccessDirect("v")
	big := &MatView{Bytes: 200}
	if c.StoreMaterialized("v", c.Gen(), big) {
		t.Fatal("over-budget materialization accepted")
	}
	// The refusal resets heat and raises the bar, so the view is not
	// immediately re-promotable on the next search.
	if c.AccessDirect("v") {
		t.Error("over-budget view promotable again after one hit")
	}
	if st := c.Stats(); st.Promotions != 0 {
		t.Errorf("Promotions = %d, want 0", st.Promotions)
	}
}

func TestAccessPlannedCounters(t *testing.T) {
	c := New(0)
	c.AccessPlanned("v", PlanRewritten)
	c.AccessPlanned("v", PlanMaterialized)
	c.AccessPlanned("v", PlanMaterialized)
	st := c.Stats()
	if st.RewriteHits != 1 || st.MaterializedHits != 2 {
		t.Errorf("RewriteHits=%d MaterializedHits=%d, want 1/2", st.RewriteHits, st.MaterializedHits)
	}
}

func TestMatViewTF(t *testing.T) {
	mv := &MatView{
		Trees:  make([]*xmltree.Node, 3),
		Tokens: map[string][]TokenCount{"xml": {{Index: 0, TF: 2}, {Index: 2, TF: 1}}},
	}
	got := mv.TF("xml")
	want := []int{2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TF(xml) = %v, want %v", got, want)
		}
	}
	if tfs := mv.TF("absent"); len(tfs) != 3 || tfs[0] != 0 || tfs[1] != 0 || tfs[2] != 0 {
		t.Errorf("TF(absent) = %v, want zeros", tfs)
	}
}
