// Package catalog is the view catalog and query-planning substrate: it
// owns the bounded LRU cache of ranked query results (formerly package
// qcache, semantics preserved), a registry of compiled views with per-view
// hit statistics, and the cached artifacts the planner rewrites against —
// evaluation skeletons (pruned view output, keyword-independent) and fully
// materialized views (result trees plus a per-view token index).
//
// The cache tiers, weakest to strongest:
//
//   - Exact result entries (Get/PutAt): memoize one (view, keywords,
//     options) triple. Any variation misses.
//   - Skeletons (Skeleton/StoreSkeleton): the view's evaluated result
//     forest with PDT provenance but before scoring. The skeleton is
//     keyword-independent — term frequencies live in the inverted indices,
//     not the skeleton — so one skeleton answers any keyword query over
//     the view (keyword supersets, disjoint sets, either semantics) by
//     re-probing the indices. core.Engine's planner serves this tier.
//   - Materialized views (Materialized/StoreMaterialized): every view
//     result fully materialized, with byte lengths and a token histogram
//     per result. Searches over a materialized view touch neither the PDT
//     pipeline nor base storage.
//
// Every tier is generation-stamped exactly like the old qcache: any corpus
// mutation bumps the generation and drops all entries and artifacts
// (Invalidate), and stores stamped with a pre-bump generation are refused.
// A planned answer is therefore always computed against the same corpus
// snapshot a direct evaluation would see, which is what keeps planned
// output byte-identical to direct output.
//
// Promotion is driven by AccessDirect hit counting: a view that keeps
// being planned without a materialized artifact becomes promotable once
// its post-invalidation hit count reaches the promotion threshold, bar
// room under the artifact byte budget. Mutation churn demotes: an
// invalidation that drops a live materialized view raises that view's
// re-promotion bar (threshold doubles per churn step, capped), so a
// write-heavy view stops being re-materialized just to be thrown away.
package catalog

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"vxml/internal/xmltree"
)

// NormalizeKeyword canonicalizes one query keyword the way every pipeline
// matches it (core.NormalizeKeyword delegates here; the definition lives in
// this package so cache keys cannot drift from the matching rule).
func NormalizeKeyword(k string) string { return strings.ToLower(strings.TrimSpace(k)) }

// Key builds the canonical cache key for a query: the view definition text,
// the sorted normalized keyword set, and every option that can change the
// response (top-k, semantics, pipeline). Keywords arrive from arbitrary
// client input (e.g. JSON over HTTP), so every component is length-prefixed
// — no keyword content can collide with a separator or with a differently
// split keyword list.
func Key(viewText string, keywords []string, parts ...string) string {
	kws := make([]string, len(keywords))
	for i, k := range keywords {
		kws[i] = NormalizeKeyword(k)
	}
	sort.Strings(kws)
	var b strings.Builder
	writePart := func(p string) {
		b.WriteString(strconv.Itoa(len(p)))
		b.WriteByte(':')
		b.WriteString(p)
	}
	writePart(viewText)
	writePart(strconv.Itoa(len(kws)))
	for _, k := range kws {
		writePart(k)
	}
	for _, p := range parts {
		writePart(p)
	}
	return b.String()
}

// BoolPart canonicalizes a boolean option for use as a Key part.
func BoolPart(v bool) string { return strconv.FormatBool(v) }

// IntPart canonicalizes an integer option for use as a Key part.
func IntPart(v int) string { return strconv.Itoa(v) }

// Plan sources, reported through Stats and the HTTP stats wire: how a
// search's answer was produced.
const (
	// PlanDirect: full pipeline (PDT generation, evaluation, scoring).
	PlanDirect = "direct"
	// PlanCacheHit: served from an exact result-cache entry.
	PlanCacheHit = "cache_hit"
	// PlanRewritten: rewritten against a compiled view's cached artifact —
	// re-scored from a skeleton, or a TopK window sliced from a cached
	// unranked entry.
	PlanRewritten = "rewritten"
	// PlanMaterialized: answered from a materialized view, skipping PDT
	// generation and base-data access entirely.
	PlanMaterialized = "materialized"
)

// Stats is a point-in-time snapshot of catalog effectiveness counters. The
// first block is the exact-entry LRU (the former qcache.Stats, fields
// unchanged); the second describes the view registry and planner tiers.
type Stats struct {
	Hits          int // lookups answered from an exact cache entry
	Misses        int // lookups that fell through
	Evictions     int // entries dropped by the LRU or byte bound
	Invalidations int // generation bumps (corpus mutations)
	Entries       int // entries currently resident
	Capacity      int // maximum resident entries
	Bytes         int // caller-reported bytes currently resident
	MaxBytes      int // maximum resident bytes
	Generation    int // current store generation

	Views            int // compiled views tracked by the registry
	Skeletons        int // live (current-generation) skeleton artifacts
	Materialized     int // live materialized views
	RewriteHits      int // searches answered by rewriting (skeleton or window)
	MaterializedHits int // searches answered from a materialized view
	Promotions       int // views promoted to materialized
	Demotions        int // materialized views dropped by invalidation
	ArtifactBytes    int // resident artifact bytes (skeletons + materialized)
	ArtifactMaxBytes int // artifact byte budget
}

// Skeleton is a view's cached evaluation output: the result forest in view
// order, pruned (PDT provenance intact, never materialized). The nodes are
// shared with every search that serves from the skeleton and must be
// treated as read-only.
type Skeleton struct {
	Results []*xmltree.Node
	Bytes   int
	gen     int
}

// TokenCount is one posting of a materialized view's token index: result
// Index (view position) contains the token TF times.
type TokenCount struct {
	Index int
	TF    int
}

// MatView is a fully materialized view: every view result as a complete
// tree (no PDT pruning, no Meta payloads), its scoring byte length, and a
// token index mapping each token to the results containing it. Trees are
// shared across searches and must be treated as read-only (serve clones).
type MatView struct {
	Trees    []*xmltree.Node
	ByteLens []int
	Tokens   map[string][]TokenCount
	Bytes    int
	gen      int
}

// TF returns the per-result subtree term frequencies of one normalized
// keyword as a dense vector aligned with Trees.
func (m *MatView) TF(keyword string) []int {
	tfs := make([]int, len(m.Trees))
	for _, tc := range m.Tokens[keyword] {
		tfs[tc.Index] = tc.TF
	}
	return tfs
}

// viewEntry is the registry record of one compiled view.
type viewEntry struct {
	id   string
	text string

	hits           int // planned searches over this view, lifetime
	hitsSinceInval int // planned searches since the last invalidation
	churn          int // invalidations that dropped a live materialized view

	skeleton *Skeleton
	mat      *MatView
}

// Promotion policy defaults: a view becomes promotable after PromoteHits
// planned searches since the last invalidation (doubled per churn step up
// to churnCap), and all artifacts together may hold DefaultArtifactBytes.
const (
	DefaultPromoteHits   = 3
	DefaultArtifactBytes = 64 << 20
	churnCap             = 6
)

// DefaultCapacity bounds the exact-entry count when the caller does not
// choose one.
const DefaultCapacity = 128

// DefaultMaxBytes bounds the total caller-reported size of resident exact
// entries. Entry count alone is no bound at all: an unranked (top-k = 0)
// search over a large corpus caches its complete materialized result set,
// so a handful of such entries could otherwise hold arbitrary memory.
const DefaultMaxBytes = 64 << 20

// Catalog is the view catalog: the exact-entry LRU result cache, the
// compiled-view registry with hit statistics, and the planner artifacts.
// All methods are safe for concurrent use.
type Catalog struct {
	mu       sync.Mutex
	capacity int
	maxBytes int
	curBytes int
	gen      int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits, misses, evictions, invalidations int

	views       map[string]*viewEntry // keyed by view definition text
	nextID      int
	promoteHits int
	artBytes    int
	artMaxBytes int

	rewriteHits, matHits, promotions, demotions int
}

type entry struct {
	key   string
	size  int
	value any
}

// New returns an empty catalog holding at most capacity exact entries and
// DefaultMaxBytes of caller-reported entry size; capacity <= 0 selects
// DefaultCapacity. The promotion policy starts at the package defaults
// (SetPolicy overrides).
func New(capacity int) *Catalog {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Catalog{
		capacity:    capacity,
		maxBytes:    DefaultMaxBytes,
		ll:          list.New(),
		items:       map[string]*list.Element{},
		views:       map[string]*viewEntry{},
		promoteHits: DefaultPromoteHits,
		artMaxBytes: DefaultArtifactBytes,
	}
}

// SetPolicy adjusts the materialization policy: promoteHits is the planned
// search count after which a view becomes promotable (<= 0 keeps the
// current value) and artifactBytes the shared byte budget for skeletons and
// materialized views (<= 0 keeps the current value). Shrinking the budget
// does not drop already-resident artifacts; the next invalidation does.
func (c *Catalog) SetPolicy(promoteHits, artifactBytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if promoteHits > 0 {
		c.promoteHits = promoteHits
	}
	if artifactBytes > 0 {
		c.artMaxBytes = artifactBytes
	}
}

// Get returns the value cached under key. Every resident entry is current:
// Invalidate drops all entries under the same mutex that guards inserts, so
// a lookup never needs a staleness check.
func (c *Catalog) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*entry).value, true
}

// Probe returns the value cached under key without touching the hit/miss
// counters: rewrite tiers use it to check for a servable base entry (e.g.
// the unranked TopK=0 entry a window query slices from) and count their
// own RewriteHits instead. A found entry is still refreshed in the LRU
// order — serving from it keeps it hot.
func (c *Catalog) Probe(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// PutAt inserts value under key only if gen is still the current generation,
// and discards it otherwise. Callers that compute a value outside any lock
// shared with Invalidate use the pattern: read Gen before computing, PutAt
// with that generation after — a value whose computation spanned an
// Invalidate is then never inserted, because the bump made its stamp stale.
// size is the caller-reported footprint of value in bytes; a value larger
// than the cache's byte bound is refused rather than evicting everything.
func (c *Catalog) PutAt(key string, value any, gen, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen || size > c.maxBytes {
		return
	}
	c.put(key, value, size)
}

// put inserts value under key at the current generation, evicting least
// recently used entries while either bound (entry count, resident bytes) is
// exceeded; the caller holds c.mu and has checked size <= maxBytes, so the
// loop never evicts the entry it just inserted.
func (c *Catalog) put(key string, value any, size int) {
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*entry)
		c.curBytes += size - ent.size
		ent.size, ent.value = size, value
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, size: size, value: value})
		c.curBytes += size
	}
	for c.ll.Len() > c.capacity || c.curBytes > c.maxBytes {
		back := c.ll.Back()
		ent := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.curBytes -= ent.size
		c.evictions++
	}
}

// Gen returns the current generation, for stamping PutAt and artifact
// stores.
func (c *Catalog) Gen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Invalidate bumps the generation, drops every resident exact entry and
// every artifact, and resets per-view heat. Call it whenever the underlying
// document collection changes. The bump (not the drop) is what keeps
// in-flight computations out: a store stamped with the old generation is
// refused, so a result computed across the change can never be inserted
// afterwards. An invalidation that drops a live materialized view counts as
// a demotion and raises that view's re-promotion bar (churn).
func (c *Catalog) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.invalidations++
	c.ll.Init()
	clear(c.items)
	c.curBytes = 0
	for _, ve := range c.views {
		if ve.mat != nil {
			c.demotions++
			if ve.churn < churnCap {
				ve.churn++
			}
		}
		ve.mat = nil
		ve.skeleton = nil
		ve.hitsSinceInval = 0
	}
	c.artBytes = 0
}

// Register assigns (or returns) the catalog ID of the view with the given
// definition text. IDs are stable for the catalog's lifetime ("cv1",
// "cv2", ... in registration order) and identify the serving view in plan
// reports.
func (c *Catalog) Register(viewText string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.registerLocked(viewText).id
}

// maxViews bounds the registry so unbounded distinct view texts (e.g. a
// workload generating queries programmatically) cannot grow it without
// limit; past the cap the coldest artifact-free entry is dropped.
const maxViews = 4096

func (c *Catalog) registerLocked(viewText string) *viewEntry {
	if ve, ok := c.views[viewText]; ok {
		return ve
	}
	if len(c.views) >= maxViews {
		c.evictColdestViewLocked()
	}
	c.nextID++
	ve := &viewEntry{id: "cv" + strconv.Itoa(c.nextID), text: viewText}
	c.views[viewText] = ve
	return ve
}

// evictColdestViewLocked drops the registry entry with the fewest lifetime
// hits, preferring entries without live artifacts (an entry holding one is
// only chosen when every entry does, and its artifact bytes are released).
func (c *Catalog) evictColdestViewLocked() {
	victim, best := "", -1
	for text, ve := range c.views {
		score := ve.hits
		if (ve.skeleton != nil && ve.skeleton.gen == c.gen) || (ve.mat != nil && ve.mat.gen == c.gen) {
			score += 1 << 30
		}
		if best == -1 || score < best {
			best, victim = score, text
		}
	}
	if victim == "" {
		return
	}
	ve := c.views[victim]
	if ve.skeleton != nil && ve.skeleton.gen == c.gen {
		c.artBytes -= ve.skeleton.Bytes
	}
	if ve.mat != nil && ve.mat.gen == c.gen {
		c.artBytes -= ve.mat.Bytes
	}
	delete(c.views, victim)
}

// IDOf returns the catalog ID of a registered view ("" if the text was
// never registered).
func (c *Catalog) IDOf(viewText string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ve, ok := c.views[viewText]; ok {
		return ve.id
	}
	return ""
}

// AccessDirect records one planned search over the view that fell through
// to direct evaluation, and reports whether the view is now promotable: hot
// enough under its churn-adjusted threshold, not already materialized, and
// with room left in the artifact budget. The caller (the engine) performs
// the promotion and stores it with StoreMaterialized.
func (c *Catalog) AccessDirect(viewText string) (promotable bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ve := c.registerLocked(viewText)
	ve.hits++
	ve.hitsSinceInval++
	if ve.mat != nil {
		return false
	}
	return ve.hitsSinceInval >= c.promoteHits<<min(ve.churn, churnCap) && c.artBytes < c.artMaxBytes
}

// AccessPlanned records one search answered by a planner tier (source
// PlanRewritten or PlanMaterialized) over the view. Like AccessDirect it
// reports whether the view is now promotable: rewrite serves count toward
// the promotion threshold — a view hot enough that its skeleton keeps
// answering is exactly the one worth upgrading to a materialized view —
// while a materialized serve never is (the strongest tier already holds).
func (c *Catalog) AccessPlanned(viewText, source string) (promotable bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ve := c.registerLocked(viewText)
	ve.hits++
	ve.hitsSinceInval++
	switch source {
	case PlanRewritten:
		c.rewriteHits++
	case PlanMaterialized:
		c.matHits++
	}
	if source != PlanRewritten || ve.mat != nil {
		return false
	}
	return ve.hitsSinceInval >= c.promoteHits<<min(ve.churn, churnCap) && c.artBytes < c.artMaxBytes
}

// Skeleton returns the view's current-generation skeleton and the view's
// catalog ID, or ok = false when none is live. The caller must hold
// whatever locks make the current generation stable for the duration of
// its use (the engine serves skeletons under the search's shard read
// locks).
func (c *Catalog) Skeleton(viewText string) (sk *Skeleton, viewID string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ve, exists := c.views[viewText]
	if !exists || ve.skeleton == nil || ve.skeleton.gen != c.gen {
		return nil, "", false
	}
	return ve.skeleton, ve.id, true
}

// StoreSkeleton records a view's evaluation output as a skeleton artifact,
// stamped with gen: a stale stamp (a mutation landed since the search
// planned) or an artifact-budget overflow refuses the store. Results must
// be in view order and are retained by reference — the engine only stores
// forests whose nodes no caller can mutate.
func (c *Catalog) StoreSkeleton(viewText string, gen int, results []*xmltree.Node, bytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen || c.artBytes+bytes > c.artMaxBytes {
		return
	}
	ve := c.registerLocked(viewText)
	if ve.skeleton != nil && ve.skeleton.gen == c.gen {
		return // an identical skeleton is already live
	}
	ve.skeleton = &Skeleton{Results: results, Bytes: bytes, gen: gen}
	c.artBytes += bytes
}

// Materialized returns the view's current-generation materialized artifact
// and the view's catalog ID, or ok = false when none is live. The same
// lock discipline as Skeleton applies.
func (c *Catalog) Materialized(viewText string) (mv *MatView, viewID string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ve, exists := c.views[viewText]
	if !exists || ve.mat == nil || ve.mat.gen != c.gen {
		return nil, "", false
	}
	return ve.mat, ve.id, true
}

// StoreMaterialized records a fully materialized view, stamped with gen.
// It reports whether the artifact was accepted: a stale stamp refuses it,
// and an artifact that would overflow the byte budget is refused AND
// counted as churn, so an over-budget view stops being rebuilt on every
// search.
func (c *Catalog) StoreMaterialized(viewText string, gen int, mv *MatView) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return false
	}
	ve := c.registerLocked(viewText)
	if ve.mat != nil && ve.mat.gen == c.gen {
		return false // lost a promotion race: an identical artifact is live
	}
	if c.artBytes+mv.Bytes > c.artMaxBytes {
		if ve.churn < churnCap {
			ve.churn++
		}
		ve.hitsSinceInval = 0
		return false
	}
	mv.gen = gen
	ve.mat = mv
	c.artBytes += mv.Bytes
	c.promotions++
	return true
}

// Stats returns a snapshot of the catalog counters.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.ll.Len(),
		Capacity:      c.capacity,
		Bytes:         c.curBytes,
		MaxBytes:      c.maxBytes,
		Generation:    c.gen,

		Views:            len(c.views),
		RewriteHits:      c.rewriteHits,
		MaterializedHits: c.matHits,
		Promotions:       c.promotions,
		Demotions:        c.demotions,
		ArtifactBytes:    c.artBytes,
		ArtifactMaxBytes: c.artMaxBytes,
	}
	for _, ve := range c.views {
		if ve.skeleton != nil && ve.skeleton.gen == c.gen {
			st.Skeletons++
		}
		if ve.mat != nil && ve.mat.gen == c.gen {
			st.Materialized++
		}
	}
	return st
}

// Len returns the number of resident exact entries.
func (c *Catalog) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
