// Package pred implements leaf-value predicates shared by the query AST,
// the QPT, the path index and the evaluator (paper §3.3: "nodes are
// associated with tag names and (possibly) predicates", e.g. year > 1995).
//
// Comparison follows XQuery's untyped-atomic convention as restricted by the
// supported grammar: if both operands parse as numbers they compare
// numerically, otherwise they compare as strings.
package pred

import (
	"fmt"
	"strconv"
)

// Op is a comparison operator from the supported grammar (Comp ::= '=' |
// '<' | '>').
type Op byte

// Supported comparison operators.
const (
	Eq Op = '='
	Lt Op = '<'
	Gt Op = '>'
)

// Predicate compares an element's atomic value against a literal.
type Predicate struct {
	Op  Op
	Lit string
}

// String renders the predicate as it appears in queries, e.g. "> 1995".
func (p Predicate) String() string { return fmt.Sprintf("%c %s", p.Op, p.Lit) }

// Eval reports whether value satisfies the predicate.
func (p Predicate) Eval(value string) bool {
	return Compare(value, p.Lit, p.Op)
}

// Compare applies op to (a, b) with numeric comparison when both operands
// are numeric, string comparison otherwise.
func Compare(a, b string, op Op) bool {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA == nil && errB == nil {
		switch op {
		case Eq:
			return fa == fb
		case Lt:
			return fa < fb
		case Gt:
			return fa > fb
		}
		return false
	}
	switch op {
	case Eq:
		return a == b
	case Lt:
		return a < b
	case Gt:
		return a > b
	}
	return false
}

// All reports whether value satisfies every predicate in preds.
func All(preds []Predicate, value string) bool {
	for _, p := range preds {
		if !p.Eval(value) {
			return false
		}
	}
	return true
}
