package pred

import "testing"

func TestNumericComparison(t *testing.T) {
	cases := []struct {
		a, b string
		op   Op
		want bool
	}{
		{"1996", "1995", Gt, true},
		{"1995", "1995", Gt, false},
		{"1994", "1995", Lt, true},
		{"07", "7", Eq, true}, // numeric equality ignores formatting
		{"1e3", "1000", Eq, true},
		{"2", "10", Lt, true}, // numeric, not lexicographic
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b, c.op); got != c.want {
			t.Errorf("Compare(%q,%q,%c) = %v, want %v", c.a, c.b, c.op, got, c.want)
		}
	}
}

func TestStringComparison(t *testing.T) {
	cases := []struct {
		a, b string
		op   Op
		want bool
	}{
		{"Jane", "Jane", Eq, true},
		{"Jane", "John", Eq, false},
		{"abc", "abd", Lt, true},
		{"b", "a", Gt, true},
		{"10x", "9", Lt, true}, // one non-numeric operand -> string compare
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b, c.op); got != c.want {
			t.Errorf("Compare(%q,%q,%c) = %v, want %v", c.a, c.b, c.op, got, c.want)
		}
	}
}

func TestPredicateEvalAndString(t *testing.T) {
	p := Predicate{Op: Gt, Lit: "1995"}
	if !p.Eval("1996") || p.Eval("1995") {
		t.Error("Eval(> 1995) wrong")
	}
	if p.String() != "> 1995" {
		t.Errorf("String = %q", p.String())
	}
}

func TestAll(t *testing.T) {
	preds := []Predicate{{Op: Gt, Lit: "10"}, {Op: Lt, Lit: "20"}}
	if !All(preds, "15") {
		t.Error("15 satisfies both")
	}
	if All(preds, "25") || All(preds, "5") {
		t.Error("out-of-range values should fail")
	}
	if !All(nil, "anything") {
		t.Error("empty predicate list is vacuously true")
	}
}

func TestUnknownOp(t *testing.T) {
	if Compare("1", "1", Op('?')) {
		t.Error("unknown op should be false")
	}
	if Compare("a", "a", Op('?')) {
		t.Error("unknown op should be false (string path)")
	}
}
