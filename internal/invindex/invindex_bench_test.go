// Microbenchmarks for inverted-index construction and subtree-TF probing —
// the two invindex paths on the ingest and PDT-generation hot loops.
// vxmlbench's hot_paths scenario reports the same comparison
// machine-readably.
package invindex

import (
	"fmt"
	"strings"
	"testing"

	"vxml/internal/xmltree"
)

func benchDoc(b *testing.B, articles int) *xmltree.Document {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("<books>")
	for i := 0; i < articles; i++ {
		fmt.Fprintf(&sb,
			"<article><tl>study %d of fuzzy systems</tl><bdy>fuzzy neural control systems thomas moore parallel data ieee computing item-%d</bdy></article>",
			i, i)
	}
	sb.WriteString("</books>")
	doc, err := xmltree.ParseString(sb.String(), "bench.xml", 1)
	if err != nil {
		b.Fatal(err)
	}
	return doc
}

func BenchmarkBuild(b *testing.B) {
	doc := benchDoc(b, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(doc)
	}
}

func BenchmarkSubtreeTFProbe(b *testing.B) {
	doc := benchDoc(b, 100)
	ix := Build(doc)
	pl := ix.Lookup("fuzzy")
	articles := doc.Root.Children
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range articles {
			pl.SubtreeTF(a.ID)
		}
	}
}

func BenchmarkContainsSubtreeProbe(b *testing.B) {
	doc := benchDoc(b, 100)
	ix := Build(doc)
	pl := ix.Lookup("moore")
	articles := doc.Root.Children
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range articles {
			pl.ContainsSubtree(a.ID)
		}
	}
}
