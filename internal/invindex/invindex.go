// Package invindex implements XML inverted-list indices (paper §3.2,
// Figure 4b): for each keyword, the Dewey-ordered list of elements that
// directly contain the keyword, with term frequency and word positions.
//
// Because IDs are Dewey IDs, the aggregate term frequency of a keyword in
// an element's whole subtree is the sum of tf over the ID range
// [id, id.Successor()), which the posting list answers in O(log n) with a
// prefix-sum array — this is how PDT generation obtains tf values for 'c'
// nodes without touching base data.
package invindex

import (
	"sort"
	"sync/atomic"

	"vxml/internal/btree"
	"vxml/internal/dewey"
	"vxml/internal/xmltree"
)

// Posting records that one element directly contains a keyword TF times at
// the given word offsets of its text content.
type Posting struct {
	ID        dewey.ID
	TF        int
	Positions []int32
}

// PostingList is the Dewey-ordered list of postings for one keyword.
type PostingList struct {
	Keyword  string
	Postings []Posting
	tfPrefix []int // tfPrefix[i] = sum of TF of Postings[:i]
}

// Index is the inverted index of a single document. Once built it is
// immutable apart from the atomic lookup counter, so concurrent searches
// may probe it freely.
type Index struct {
	dict     *btree.Tree  // keyword -> *PostingList
	elements int          // number of elements in the document
	lookups  atomic.Int64 // number of keyword lookups served
}

// Lookups returns the number of keyword lookups served. Safe to call
// concurrently with reads.
func (ix *Index) Lookups() int { return int(ix.lookups.Load()) }

// Build constructs the inverted index for doc in one walk.
func Build(doc *xmltree.Document) *Index {
	ix := &Index{dict: btree.New()}
	doc.Root.Walk(func(n *xmltree.Node) {
		ix.elements++
		if n.Value == "" {
			return
		}
		tokens := xmltree.Tokenize(n.Value)
		byWord := map[string][]int32{}
		for pos, tok := range tokens {
			byWord[tok] = append(byWord[tok], int32(pos))
		}
		for word, positions := range byWord {
			var pl *PostingList
			if v, ok := ix.dict.Get([]byte(word)); ok {
				pl = v.(*PostingList)
			} else {
				pl = &PostingList{Keyword: word}
				ix.dict.Put([]byte(word), pl)
			}
			pl.Postings = append(pl.Postings, Posting{ID: n.ID, TF: len(positions), Positions: positions})
		}
	})
	// Document-order walk appends postings already sorted; build prefix sums.
	it := ix.dict.Min()
	for ; it.Valid(); it.Next() {
		it.Value().(*PostingList).buildPrefix()
	}
	return ix
}

func (pl *PostingList) buildPrefix() {
	pl.tfPrefix = make([]int, len(pl.Postings)+1)
	for i, p := range pl.Postings {
		pl.tfPrefix[i+1] = pl.tfPrefix[i] + p.TF
	}
}

// Lookup returns the posting list for keyword (lowercase), or an empty list
// if the keyword does not occur.
func (ix *Index) Lookup(keyword string) *PostingList {
	ix.lookups.Add(1)
	if v, ok := ix.dict.Get([]byte(keyword)); ok {
		return v.(*PostingList)
	}
	return &PostingList{Keyword: keyword, tfPrefix: []int{0}}
}

// Keywords returns the number of distinct keywords indexed.
func (ix *Index) Keywords() int { return ix.dict.Len() }

// Elements returns the number of elements in the indexed document.
func (ix *Index) Elements() int { return ix.elements }

// Len returns the number of postings (elements directly containing the
// keyword) — the document frequency at element granularity.
func (pl *PostingList) Len() int { return len(pl.Postings) }

// TotalTF returns the total occurrences of the keyword in the document.
func (pl *PostingList) TotalTF() int {
	if len(pl.tfPrefix) == 0 {
		return 0
	}
	return pl.tfPrefix[len(pl.tfPrefix)-1]
}

// rangeBounds returns the posting index range covering the subtree of id.
func (pl *PostingList) rangeBounds(id dewey.ID) (lo, hi int) {
	succ := id.Successor()
	lo = sort.Search(len(pl.Postings), func(i int) bool {
		return dewey.Compare(pl.Postings[i].ID, id) >= 0
	})
	hi = sort.Search(len(pl.Postings), func(i int) bool {
		return dewey.Compare(pl.Postings[i].ID, succ) >= 0
	})
	return lo, hi
}

// SubtreeTF returns the aggregate term frequency of the keyword within the
// subtree rooted at id (the paper's tf(e, k)).
func (pl *PostingList) SubtreeTF(id dewey.ID) int {
	lo, hi := pl.rangeBounds(id)
	return pl.tfPrefix[hi] - pl.tfPrefix[lo]
}

// ContainsSubtree reports whether the subtree rooted at id contains the
// keyword (the paper's contains(e, k), answered from the index alone).
func (pl *PostingList) ContainsSubtree(id dewey.ID) bool {
	lo, hi := pl.rangeBounds(id)
	return hi > lo
}

// DirectTF returns the term frequency of the keyword directly inside the
// element with the given ID (0 if absent).
func (pl *PostingList) DirectTF(id dewey.ID) int {
	i := sort.Search(len(pl.Postings), func(i int) bool {
		return dewey.Compare(pl.Postings[i].ID, id) >= 0
	})
	if i < len(pl.Postings) && dewey.Equal(pl.Postings[i].ID, id) {
		return pl.Postings[i].TF
	}
	return 0
}
