// Package invindex implements XML inverted-list indices (paper §3.2,
// Figure 4b): for each keyword, the Dewey-ordered list of elements that
// directly contain the keyword, with term frequency and word positions.
//
// Because IDs are Dewey IDs, the aggregate term frequency of a keyword in
// an element's whole subtree is the sum of tf over the ID range
// [id, id.Successor()), which the posting list answers in O(log n) with a
// prefix-sum array — this is how PDT generation obtains tf values for 'c'
// nodes without touching base data.
package invindex

import (
	"sort"
	"sync/atomic"

	"vxml/internal/btree"
	"vxml/internal/dewey"
	"vxml/internal/intern"
	"vxml/internal/xmltree"
)

// Posting records that one element directly contains a keyword TF times at
// the given word offsets of its text content.
type Posting struct {
	ID        dewey.ID
	TF        int
	Positions []int32
}

// PostingList is the Dewey-ordered list of postings for one keyword.
type PostingList struct {
	Keyword  string
	Postings []Posting
	tfPrefix []int // tfPrefix[i] = sum of TF of Postings[:i]
}

// Index is the inverted index of a single document. Once built it is
// immutable apart from the atomic lookup counter, so concurrent searches
// may probe it freely.
type Index struct {
	dict     *btree.Tree  // keyword -> *PostingList
	elements int          // number of elements in the document
	lookups  atomic.Int64 // number of keyword lookups served
}

// Lookups returns the number of keyword lookups served. Safe to call
// concurrently with reads.
func (ix *Index) Lookups() int { return int(ix.lookups.Load()) }

// Build constructs the inverted index for doc in one walk. The walk is in
// document order, so each list's postings arrive already Dewey-sorted and a
// token of the current element always extends the list's last posting —
// which is what lets the builder stream tokens straight into the lists with
// one document-level map instead of allocating per-element scratch.
func Build(doc *xmltree.Document) *Index {
	ix := &Index{dict: btree.New()}
	lists := map[string]*PostingList{}
	var curID dewey.ID
	var pos int32
	// Position slices are carved from chunked arenas: most postings hold a
	// single position, and a full-capacity subslice keeps the rare multi-
	// occurrence append from bleeding into a neighbor (it reallocates).
	var posChunk []int32
	newPositions := func(p int32) []int32 {
		if len(posChunk) == cap(posChunk) {
			posChunk = make([]int32, 0, 1024)
		}
		posChunk = append(posChunk, p)
		return posChunk[len(posChunk)-1 : len(posChunk) : len(posChunk)]
	}
	add := func(tok string) bool {
		pl := lists[tok]
		if pl == nil {
			// First sight of the word in this document: intern it so every
			// document (and every shard) retains one canonical copy of the
			// corpus vocabulary.
			kw := intern.String(tok)
			pl = &PostingList{Keyword: kw}
			lists[kw] = pl
		}
		if k := len(pl.Postings) - 1; k >= 0 && dewey.Equal(pl.Postings[k].ID, curID) {
			p := &pl.Postings[k]
			p.TF++
			p.Positions = append(p.Positions, pos)
		} else {
			pl.Postings = append(pl.Postings, Posting{ID: curID, TF: 1, Positions: newPositions(pos)})
		}
		pos++
		return true
	}
	doc.Root.Walk(func(n *xmltree.Node) {
		ix.elements++
		if n.Value == "" {
			return
		}
		curID, pos = n.ID, 0
		xmltree.VisitTokens(n.Value, add)
	})
	for kw, pl := range lists {
		pl.buildPrefix()
		ix.dict.Put([]byte(kw), pl)
	}
	return ix
}

func (pl *PostingList) buildPrefix() {
	pl.tfPrefix = make([]int, len(pl.Postings)+1)
	for i, p := range pl.Postings {
		pl.tfPrefix[i+1] = pl.tfPrefix[i] + p.TF
	}
}

// Lookup returns the posting list for keyword (lowercase), or an empty list
// if the keyword does not occur.
func (ix *Index) Lookup(keyword string) *PostingList {
	ix.lookups.Add(1)
	if v, ok := ix.dict.Get([]byte(keyword)); ok {
		return v.(*PostingList)
	}
	return &PostingList{Keyword: keyword, tfPrefix: []int{0}}
}

// Keywords returns the number of distinct keywords indexed.
func (ix *Index) Keywords() int { return ix.dict.Len() }

// Elements returns the number of elements in the indexed document.
func (ix *Index) Elements() int { return ix.elements }

// Len returns the number of postings (elements directly containing the
// keyword) — the document frequency at element granularity.
func (pl *PostingList) Len() int { return len(pl.Postings) }

// TotalTF returns the total occurrences of the keyword in the document.
func (pl *PostingList) TotalTF() int {
	if len(pl.tfPrefix) == 0 {
		return 0
	}
	return pl.tfPrefix[len(pl.tfPrefix)-1]
}

// rangeBounds returns the posting index range covering the subtree of id.
// The upper bound compares against id's successor without materializing it
// (dewey.CompareToSuccessor), keeping the probe allocation-free — it runs
// once per candidate element per keyword during PDT generation.
func (pl *PostingList) rangeBounds(id dewey.ID) (lo, hi int) {
	lo = sort.Search(len(pl.Postings), func(i int) bool {
		return dewey.Compare(pl.Postings[i].ID, id) >= 0
	})
	hi = sort.Search(len(pl.Postings), func(i int) bool {
		return dewey.CompareToSuccessor(pl.Postings[i].ID, id) >= 0
	})
	return lo, hi
}

// SubtreeTF returns the aggregate term frequency of the keyword within the
// subtree rooted at id (the paper's tf(e, k)).
func (pl *PostingList) SubtreeTF(id dewey.ID) int {
	lo, hi := pl.rangeBounds(id)
	return pl.tfPrefix[hi] - pl.tfPrefix[lo]
}

// ContainsSubtree reports whether the subtree rooted at id contains the
// keyword (the paper's contains(e, k), answered from the index alone).
func (pl *PostingList) ContainsSubtree(id dewey.ID) bool {
	lo, hi := pl.rangeBounds(id)
	return hi > lo
}

// Lists snapshots every posting list in keyword order. The lists are the
// index's own — callers must treat them as read-only. Lists/FromLists are
// the serialization seam the disk backend stores indices through.
func (ix *Index) Lists() []*PostingList {
	lists := make([]*PostingList, 0, ix.dict.Len())
	for it := ix.dict.Min(); it.Valid(); it.Next() {
		lists = append(lists, it.Value().(*PostingList))
	}
	return lists
}

// FromLists rebuilds an index from per-keyword posting lists (keywords
// distinct, postings Dewey-sorted — the shape Lists produces) plus the
// indexed document's element count. Prefix sums are recomputed, so lists
// deserialized without them work. For any document,
// FromLists(Build(doc).Lists(), Build(doc).Elements()) answers every
// lookup identically to Build(doc).
func FromLists(lists []*PostingList, elements int) *Index {
	ix := &Index{dict: btree.New(), elements: elements}
	for _, pl := range lists {
		pl.Keyword = intern.String(pl.Keyword)
		pl.buildPrefix()
		ix.dict.Put([]byte(pl.Keyword), pl)
	}
	return ix
}

// DirectTF returns the term frequency of the keyword directly inside the
// element with the given ID (0 if absent).
func (pl *PostingList) DirectTF(id dewey.ID) int {
	i := sort.Search(len(pl.Postings), func(i int) bool {
		return dewey.Compare(pl.Postings[i].ID, id) >= 0
	})
	if i < len(pl.Postings) && dewey.Equal(pl.Postings[i].ID, id) {
		return pl.Postings[i].TF
	}
	return 0
}
