package invindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vxml/internal/dewey"
	"vxml/internal/xmltree"
)

const reviewsXML = `<reviews>
  <review><isbn>111</isbn><content>all about XML search and XML views</content></review>
  <review><isbn>222</isbn><content>easy to read</content></review>
  <review><isbn>333</isbn><content>search engines explained</content></review>
</reviews>`

func buildReviews(t *testing.T) (*xmltree.Document, *Index) {
	t.Helper()
	doc, err := xmltree.ParseString(reviewsXML, "reviews.xml", 2)
	if err != nil {
		t.Fatal(err)
	}
	return doc, Build(doc)
}

func TestLookupDirectPostings(t *testing.T) {
	_, ix := buildReviews(t)
	pl := ix.Lookup("xml")
	if pl.Len() != 1 {
		t.Fatalf("xml postings = %d", pl.Len())
	}
	p := pl.Postings[0]
	if p.ID.String() != "2.1.2" || p.TF != 2 {
		t.Errorf("posting = %+v", p)
	}
	// positions: "all about xml search and xml views" -> xml at 2 and 5
	if len(p.Positions) != 2 || p.Positions[0] != 2 || p.Positions[1] != 5 {
		t.Errorf("positions = %v", p.Positions)
	}
}

func TestLookupMissingKeyword(t *testing.T) {
	_, ix := buildReviews(t)
	pl := ix.Lookup("quantum")
	if pl.Len() != 0 || pl.TotalTF() != 0 {
		t.Errorf("missing keyword: %+v", pl)
	}
	if pl.SubtreeTF(dewey.MustParse("2")) != 0 {
		t.Error("SubtreeTF of empty list should be 0")
	}
}

func TestSubtreeTFAggregation(t *testing.T) {
	doc, ix := buildReviews(t)
	pl := ix.Lookup("search")
	// whole document subtree
	if got := pl.SubtreeTF(doc.Root.ID); got != 2 {
		t.Errorf("SubtreeTF(root) = %d", got)
	}
	// first review only
	if got := pl.SubtreeTF(dewey.MustParse("2.1")); got != 1 {
		t.Errorf("SubtreeTF(2.1) = %d", got)
	}
	// second review has none
	if got := pl.SubtreeTF(dewey.MustParse("2.2")); got != 0 {
		t.Errorf("SubtreeTF(2.2) = %d", got)
	}
}

func TestContainsSubtree(t *testing.T) {
	_, ix := buildReviews(t)
	pl := ix.Lookup("read")
	if !pl.ContainsSubtree(dewey.MustParse("2.2")) {
		t.Error("review 2 contains 'read'")
	}
	if pl.ContainsSubtree(dewey.MustParse("2.1")) {
		t.Error("review 1 does not contain 'read'")
	}
}

func TestDirectTF(t *testing.T) {
	_, ix := buildReviews(t)
	pl := ix.Lookup("xml")
	if pl.DirectTF(dewey.MustParse("2.1.2")) != 2 {
		t.Error("DirectTF(content) should be 2")
	}
	if pl.DirectTF(dewey.MustParse("2.1")) != 0 {
		t.Error("review element does not directly contain 'xml'")
	}
}

func TestCountsAndStats(t *testing.T) {
	_, ix := buildReviews(t)
	if ix.Elements() != 10 {
		t.Errorf("Elements = %d", ix.Elements())
	}
	if ix.Keywords() == 0 {
		t.Error("no keywords indexed")
	}
	before := ix.Lookups()
	ix.Lookup("xml")
	if ix.Lookups() != before+1 {
		t.Error("Lookups not counted")
	}
	if got := ix.Lookup("xml").TotalTF(); got != 2 {
		t.Errorf("TotalTF(xml) = %d", got)
	}
}

// randomDoc builds a random doc with a small vocabulary for property tests.
func randomDoc(r *rand.Rand) *xmltree.Document {
	words := []string{"xml", "search", "view", "data"}
	var build func(depth int) *xmltree.Node
	build = func(depth int) *xmltree.Node {
		n := xmltree.NewElement([]string{"a", "b"}[r.Intn(2)])
		if depth <= 0 || r.Intn(3) == 0 {
			k := r.Intn(4)
			for i := 0; i < k; i++ {
				if n.Value != "" {
					n.Value += " "
				}
				n.Value += words[r.Intn(len(words))]
			}
			return n
		}
		for i := 0; i < 1+r.Intn(3); i++ {
			n.AppendChild(build(depth - 1))
		}
		return n
	}
	doc := &xmltree.Document{Name: "t.xml", Root: build(3), DocID: 1}
	doc.Finalize()
	return doc
}

// TestQuickSubtreeTFEqualsWalk: index aggregation equals a naive subtree
// token count for random documents, keywords and elements.
func TestQuickSubtreeTFEqualsWalk(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r)
		ix := Build(doc)
		kw := []string{"xml", "search", "view", "data"}[r.Intn(4)]
		pl := ix.Lookup(kw)
		ok := true
		doc.Root.Walk(func(n *xmltree.Node) {
			want := xmltree.SubtreeTF(n, []string{kw})[0]
			if pl.SubtreeTF(n.ID) != want {
				ok = false
			}
			if pl.ContainsSubtree(n.ID) != (want > 0) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickPostingsSortedWithPrefixSums: postings are in Dewey order and
// prefix sums are consistent.
func TestQuickPostingsSortedWithPrefixSums(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r)
		ix := Build(doc)
		for _, kw := range []string{"xml", "search", "view", "data"} {
			pl := ix.Lookup(kw)
			sum := 0
			for i, p := range pl.Postings {
				if i > 0 && dewey.Compare(pl.Postings[i-1].ID, p.ID) >= 0 {
					return false
				}
				if pl.tfPrefix[i] != sum {
					return false
				}
				sum += p.TF
				if p.TF != len(p.Positions) {
					return false
				}
			}
			if pl.TotalTF() != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
