package inex

import (
	"strings"
	"testing"

	"vxml/internal/xmltree"
)

func TestDeterministic(t *testing.T) {
	a := Generate(Options{TargetBytes: 64 << 10, Seed: 1})
	b := Generate(Options{TargetBytes: 64 << 10, Seed: 1})
	finalize(a)
	finalize(b)
	if a.INEX.Root.XMLString("") != b.INEX.Root.XMLString("") {
		t.Error("same seed must generate identical corpora")
	}
	c := Generate(Options{TargetBytes: 64 << 10, Seed: 2})
	finalize(c)
	if a.INEX.Root.XMLString("") == c.INEX.Root.XMLString("") {
		t.Error("different seeds should differ")
	}
}

func finalize(c *Corpus) {
	for i, d := range c.Docs() {
		d.DocID = int32(i + 1)
		d.Finalize()
	}
}

func TestSizeTargeting(t *testing.T) {
	for _, target := range []int{32 << 10, 128 << 10, 512 << 10} {
		c := Generate(Options{TargetBytes: target, Seed: 3})
		finalize(c)
		got := c.INEX.Root.ByteLen
		if got < target/3 || got > target*3 {
			t.Errorf("target %d produced %d bytes (off by >3x)", target, got)
		}
	}
}

func TestDTDShape(t *testing.T) {
	c := Generate(Options{TargetBytes: 32 << 10, Seed: 4})
	finalize(c)
	root := c.INEX.Root
	if root.Tag != "books" {
		t.Fatalf("root = %s", root.Tag)
	}
	journals := 0
	articles := 0
	root.Walk(func(n *xmltree.Node) {
		switch n.Tag {
		case "journal":
			journals++
			if n.Children[0].Tag != "title" {
				t.Errorf("journal first child = %s", n.Children[0].Tag)
			}
		case "article":
			articles++
			tags := map[string]bool{}
			for _, ch := range n.Children {
				tags[ch.Tag] = true
			}
			for _, want := range []string{"fno", "fm", "bdy"} {
				if !tags[want] {
					t.Errorf("article missing %s", want)
				}
			}
		case "fm":
			hasAu := false
			for _, ch := range n.Children {
				if ch.Tag == "au" {
					hasAu = true
				}
			}
			if !hasAu {
				t.Error("fm missing au")
			}
		}
	})
	if journals == 0 || articles == 0 {
		t.Errorf("journals=%d articles=%d", journals, articles)
	}
	if articles != c.ArticleCount {
		// generator rounds article counts per journal; allow slack
		diff := articles - c.ArticleCount
		if diff < -articles/2 || diff > articles/2 {
			t.Errorf("ArticleCount=%d but %d generated", c.ArticleCount, articles)
		}
	}
}

func TestSelectivityOrdering(t *testing.T) {
	c := Generate(Options{TargetBytes: 512 << 10, Seed: 5})
	finalize(c)
	counts := map[string]int{}
	count := func(words []string) int {
		total := 0
		for _, w := range words {
			total += counts[w]
		}
		return total
	}
	c.INEX.Root.Walk(func(n *xmltree.Node) {
		for _, tok := range xmltree.Tokenize(n.Value) {
			counts[tok]++
		}
	})
	low, med, high := count(LowSelectivity), count(MediumSelectivity), count(HighSelectivity)
	if !(low > med && med > high) {
		t.Errorf("selectivity ordering violated: low=%d med=%d high=%d", low, med, high)
	}
	if high == 0 {
		t.Error("high-selectivity markers never planted; corpus too small for rare terms")
	}
}

func TestJoinPartitioning(t *testing.T) {
	c := Generate(Options{TargetBytes: 128 << 10, Seed: 6, Partitions: 4})
	finalize(c)
	// author names are namespaced per partition; articles in partition p
	// reference only partition-p authors.
	authorsByPartition := map[string]bool{}
	c.Authors.Root.Walk(func(n *xmltree.Node) {
		if n.Tag == "name" {
			authorsByPartition[n.Value] = true
		}
	})
	c.INEX.Root.Walk(func(n *xmltree.Node) {
		if n.Tag == "au" {
			if !authorsByPartition[n.Value] {
				t.Fatalf("article references unknown author %q", n.Value)
			}
			if !strings.HasPrefix(n.Value, "author_p") {
				t.Fatalf("author name %q not namespaced", n.Value)
			}
		}
	})
}

func TestElemSizeScaling(t *testing.T) {
	small := Generate(Options{TargetBytes: 64 << 10, Seed: 7, ElemSizeX: 1})
	big := Generate(Options{TargetBytes: 64 << 10, Seed: 7, ElemSizeX: 4})
	finalize(small)
	finalize(big)
	avg := func(c *Corpus) int {
		total, n := 0, 0
		c.INEX.Root.Walk(func(x *xmltree.Node) {
			if x.Tag == "article" {
				total += x.ByteLen
				n++
			}
		})
		if n == 0 {
			return 0
		}
		return total / n
	}
	if a, b := avg(small), avg(big); b < a*2 {
		t.Errorf("ElemSizeX=4 articles (%dB) not much larger than 1X (%dB)", b, a)
	}
}

func TestBooksReviewsGenerator(t *testing.T) {
	booksXML, reviewsXML := GenerateBooksReviews(25, 8)
	books, err := xmltree.ParseString(booksXML, "books.xml", 1)
	if err != nil {
		t.Fatalf("books parse: %v", err)
	}
	reviews, err := xmltree.ParseString(reviewsXML, "reviews.xml", 2)
	if err != nil {
		t.Fatalf("reviews parse: %v", err)
	}
	if len(books.Root.Children) != 25 {
		t.Errorf("books = %d", len(books.Root.Children))
	}
	if len(reviews.Root.Children) != 50 {
		t.Errorf("reviews = %d", len(reviews.Root.Children))
	}
	// deterministic
	b2, r2 := GenerateBooksReviews(25, 8)
	if b2 != booksXML || r2 != reviewsXML {
		t.Error("GenerateBooksReviews not deterministic")
	}
}
