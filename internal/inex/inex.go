// Package inex generates the synthetic stand-in for the paper's 500MB INEX
// collection. The real INEX data is licensed and unavailable offline, so we
// generate documents with the same DTD shape the paper excerpts:
//
//	<!ELEMENT books (journal*)>
//	<!ELEMENT journal (title, (article)*)>
//	<!ELEMENT article (fno, doi?, fm, bdy)>
//	<!ELEMENT fm (hdr?, (au|kwd)*)>
//
// plus the auxiliary joinable documents the experiments need (authors,
// affiliations, topics, venues, countries — used by the #joins and nesting
// sweeps). Everything is seeded and deterministic.
//
// Keyword selectivity is controlled by planting marker words at calibrated
// rates, mirroring Table 1: low selectivity (frequent) "ieee"/"computing",
// medium "thomas"/"control", high (rare) "moore"/"burnett".
package inex

import (
	"fmt"
	"math/rand"
	"strings"

	"vxml/internal/xmltree"
)

// Marker keywords of Table 1, by selectivity class.
var (
	LowSelectivity    = []string{"ieee", "computing"}
	MediumSelectivity = []string{"thomas", "control"}
	HighSelectivity   = []string{"moore", "burnett"}
	// SweepKeywords are five medium-rate planted words used by the
	// #keywords sweep (Figure 15).
	SweepKeywords = []string{"thomas", "control", "fuzzy", "neural", "parallel"}
)

// Options parameterize corpus generation.
type Options struct {
	// TargetBytes is the approximate serialized size of inex.xml.
	TargetBytes int
	// Seed makes generation deterministic.
	Seed int64
	// Partitions controls join selectivity (Table 1): author names are
	// namespaced per partition, so with P partitions a given author joins
	// 1/P of the articles. 1 = the paper's 1X.
	Partitions int
	// ElemSizeX multiplies the article body size (Table 1's "Avg. Size of
	// View Element", 1X-5X).
	ElemSizeX int
}

func (o Options) withDefaults() Options {
	if o.TargetBytes <= 0 {
		o.TargetBytes = 256 << 10
	}
	if o.Partitions <= 0 {
		o.Partitions = 1
	}
	if o.ElemSizeX <= 0 {
		o.ElemSizeX = 1
	}
	return o
}

// Corpus is a generated document collection.
type Corpus struct {
	INEX      *xmltree.Document // inex.xml
	Authors   *xmltree.Document // authors.xml
	Affils    *xmltree.Document // affils.xml
	Topics    *xmltree.Document // topics.xml
	Venues    *xmltree.Document // venues.xml
	Countries *xmltree.Document // countries.xml
	// AuthorCount and ArticleCount summarize the corpus.
	AuthorCount, ArticleCount int
}

// Docs returns all documents in a stable order.
func (c *Corpus) Docs() []*xmltree.Document {
	return []*xmltree.Document{c.INEX, c.Authors, c.Affils, c.Topics, c.Venues, c.Countries}
}

// vocabulary is the Zipf-ish base vocabulary for body text.
var vocabulary = buildVocabulary()

func buildVocabulary() []string {
	roots := []string{
		"system", "data", "model", "network", "algorithm", "query", "index",
		"process", "result", "method", "value", "structure", "node", "graph",
		"path", "tree", "cache", "logic", "signal", "design", "theory",
		"analysis", "storage", "protocol", "circuit", "filter", "kernel",
		"vector", "matrix", "layer", "agent", "schema", "stream", "buffer",
	}
	suffixes := []string{"", "s", "ing", "ed", "al", "ic", "ion", "er"}
	var words []string
	for _, r := range roots {
		for _, s := range suffixes {
			words = append(words, r+s)
		}
	}
	return words
}

// textGen emits pseudo-natural text with planted markers.
type textGen struct {
	r *rand.Rand
}

// sentence produces n words, planting selectivity markers at their
// calibrated rates: low ~ 1/8 sentences, medium ~ 1/80, high ~ 1/800, and
// the sweep keywords at ~1/100 each.
func (t *textGen) sentence(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		// Zipf-ish pick: prefer the head of the vocabulary.
		idx := t.r.Intn(len(vocabulary))
		if t.r.Intn(3) > 0 {
			idx = t.r.Intn(1 + len(vocabulary)/8)
		}
		b.WriteString(vocabulary[idx])
	}
	roll := t.r.Intn(8000)
	switch {
	case roll < 1000:
		b.WriteByte(' ')
		b.WriteString(LowSelectivity[t.r.Intn(len(LowSelectivity))])
	case roll < 1100:
		b.WriteByte(' ')
		b.WriteString(MediumSelectivity[t.r.Intn(len(MediumSelectivity))])
	case roll < 1110:
		b.WriteByte(' ')
		b.WriteString(HighSelectivity[t.r.Intn(len(HighSelectivity))])
	case roll < 1400:
		b.WriteByte(' ')
		b.WriteString(SweepKeywords[t.r.Intn(len(SweepKeywords))])
	}
	return b.String()
}

// Generate builds a deterministic corpus of roughly TargetBytes.
func Generate(opts Options) *Corpus {
	opts = opts.withDefaults()
	r := rand.New(rand.NewSource(opts.Seed))
	tg := &textGen{r: r}

	// Rough per-article cost ~ 700 bytes at 1X body size.
	approxArticle := 420 + 360*opts.ElemSizeX
	nArticles := opts.TargetBytes / approxArticle
	if nArticles < 8 {
		nArticles = 8
	}
	authorsPerPartition := nArticles / 8
	if authorsPerPartition < 4 {
		authorsPerPartition = 4
	}
	nTopics := 40
	nVenues := 16
	nCountries := 8
	nJournalsPerPartition := nArticles/(opts.Partitions*50) + 1

	c := &Corpus{ArticleCount: nArticles}

	// authors.xml / affils.xml / countries.xml
	authorsRoot := xmltree.NewElement("authors")
	affilsRoot := xmltree.NewElement("affils")
	countriesRoot := xmltree.NewElement("countries")
	var authorNames [][]string // per partition
	for p := 0; p < opts.Partitions; p++ {
		var names []string
		for i := 0; i < authorsPerPartition; i++ {
			name := fmt.Sprintf("author_p%d_%d", p, i)
			names = append(names, name)
			au := authorsRoot.AppendChild(xmltree.NewElement("author"))
			au.AppendLeaf("name", name)
			au.AppendLeaf("affid", fmt.Sprintf("aff%d", (p*authorsPerPartition+i)%(authorsPerPartition/2+1)))
			au.AppendLeaf("bio", tg.sentence(6))
		}
		authorNames = append(authorNames, names)
	}
	c.AuthorCount = opts.Partitions * authorsPerPartition
	nAffils := authorsPerPartition/2 + 1
	for i := 0; i < nAffils; i++ {
		af := affilsRoot.AppendChild(xmltree.NewElement("affil"))
		af.AppendLeaf("affid", fmt.Sprintf("aff%d", i))
		af.AppendLeaf("instname", tg.sentence(3))
		af.AppendLeaf("country", fmt.Sprintf("country%d", i%nCountries))
	}
	for i := 0; i < nCountries; i++ {
		co := countriesRoot.AppendChild(xmltree.NewElement("country"))
		co.AppendLeaf("cname", fmt.Sprintf("country%d", i))
		co.AppendLeaf("region", tg.sentence(2))
	}

	// topics.xml / venues.xml
	topicsRoot := xmltree.NewElement("topics")
	for i := 0; i < nTopics; i++ {
		to := topicsRoot.AppendChild(xmltree.NewElement("topic"))
		to.AppendLeaf("tname", fmt.Sprintf("topic%d", i))
		to.AppendLeaf("desc", tg.sentence(8))
	}
	venuesRoot := xmltree.NewElement("venues")
	for i := 0; i < nVenues; i++ {
		ve := venuesRoot.AppendChild(xmltree.NewElement("venue"))
		ve.AppendLeaf("vid", fmt.Sprintf("v%d", i))
		ve.AppendLeaf("vname", tg.sentence(3))
		ve.AppendLeaf("city", tg.sentence(1))
	}

	// inex.xml: books(journal*), journal(title, article*)
	inexRoot := xmltree.NewElement("books")
	articleNum := 0
	for p := 0; p < opts.Partitions; p++ {
		for j := 0; j < nJournalsPerPartition; j++ {
			journal := inexRoot.AppendChild(xmltree.NewElement("journal"))
			journal.AppendLeaf("title", tg.sentence(4))
			perJournal := nArticles / (opts.Partitions * nJournalsPerPartition)
			if perJournal < 1 {
				perJournal = 1
			}
			for a := 0; a < perJournal; a++ {
				art := journal.AppendChild(xmltree.NewElement("article"))
				art.AppendLeaf("fno", fmt.Sprintf("fno%06d", articleNum))
				if r.Intn(2) == 0 {
					art.AppendLeaf("doi", fmt.Sprintf("10.1000/%06d", articleNum))
				}
				art.AppendLeaf("vid", fmt.Sprintf("v%d", r.Intn(nVenues)))
				fm := art.AppendChild(xmltree.NewElement("fm"))
				if r.Intn(3) == 0 {
					fm.AppendLeaf("hdr", tg.sentence(3))
				}
				fm.AppendLeaf("tl", tg.sentence(5))
				fm.AppendLeaf("yr", fmt.Sprintf("%d", 1988+r.Intn(20)))
				names := authorNames[p]
				for k := 0; k < 1+r.Intn(3); k++ {
					fm.AppendLeaf("au", names[r.Intn(len(names))])
				}
				for k := 0; k < 1+r.Intn(2); k++ {
					fm.AppendLeaf("kwd", fmt.Sprintf("topic%d", r.Intn(nTopics)))
				}
				bdy := art.AppendChild(xmltree.NewElement("bdy"))
				for s := 0; s < 2*opts.ElemSizeX; s++ {
					sec := bdy.AppendChild(xmltree.NewElement("sec"))
					sec.AppendLeaf("st", tg.sentence(3))
					sec.AppendLeaf("p", tg.sentence(22))
				}
				// Back matter with references: real INEX articles cite
				// other work, so the au and tl TAGS also occur outside the
				// fm context. Path indices distinguish /article/fm/au from
				// /article/bm/ref/au; per-tag element lists (as scanned by
				// GTP's structural joins) do not.
				bm := art.AppendChild(xmltree.NewElement("bm"))
				for k := 0; k < 3; k++ {
					ref := bm.AppendChild(xmltree.NewElement("ref"))
					ref.AppendLeaf("au", names[r.Intn(len(names))])
					ref.AppendLeaf("tl", tg.sentence(4))
					ref.AppendLeaf("yr", fmt.Sprintf("%d", 1970+r.Intn(35)))
				}
				articleNum++
			}
		}
	}

	c.INEX = &xmltree.Document{Name: "inex.xml", Root: inexRoot}
	c.Authors = &xmltree.Document{Name: "authors.xml", Root: authorsRoot}
	c.Affils = &xmltree.Document{Name: "affils.xml", Root: affilsRoot}
	c.Topics = &xmltree.Document{Name: "topics.xml", Root: topicsRoot}
	c.Venues = &xmltree.Document{Name: "venues.xml", Root: venuesRoot}
	c.Countries = &xmltree.Document{Name: "countries.xml", Root: countriesRoot}
	return c
}

// GenerateBooksReviews builds the paper's running-example corpora (Figure
// 1) at a parameterized size: nBooks books and ~2x reviews, with keyword
// markers planted in titles and review contents.
func GenerateBooksReviews(nBooks int, seed int64) (booksXML, reviewsXML string) {
	r := rand.New(rand.NewSource(seed))
	tg := &textGen{r: r}
	var books strings.Builder
	books.WriteString("<books>\n")
	for i := 0; i < nBooks; i++ {
		fmt.Fprintf(&books, "<book><isbn>%03d-%02d-%04d</isbn><title>%s</title><publisher>%s</publisher><year>%d</year></book>\n",
			i, i%97, i*7%9973, tg.sentence(4), tg.sentence(2), 1985+r.Intn(25))
	}
	books.WriteString("</books>")
	var reviews strings.Builder
	reviews.WriteString("<reviews>\n")
	for i := 0; i < nBooks*2; i++ {
		b := r.Intn(nBooks + nBooks/10 + 1) // some reviews dangle
		fmt.Fprintf(&reviews, "<review><isbn>%03d-%02d-%04d</isbn><rate>%d</rate><content>%s</content><reviewer>rev%d</reviewer></review>\n",
			b, b%97, b*7%9973, 1+r.Intn(5), tg.sentence(12), r.Intn(50))
	}
	reviews.WriteString("</reviews>")
	return books.String(), reviews.String()
}
