// Package btree implements an in-memory B+-tree with byte-string keys and
// ordered range scans. It backs the Path-Values table of the path index and
// the per-keyword inverted lists (paper §3.2, Figures 4b and 5).
//
// The tree is build-once/read-many, matching how the system uses indices:
// they are constructed at load time and then only probed. Keys are unique;
// Put on an existing key replaces its value.
package btree

import (
	"bytes"
	"sync/atomic"
)

// degree is the maximum number of keys in a node. Chosen so a leaf fits in a
// couple of cache lines with typical short keys.
const degree = 32

// Tree is a B+-tree from []byte keys to arbitrary values. The zero value is
// not usable; call New.
type Tree struct {
	root   node
	length int
	// probes counts point lookups and seeks, so callers can report index
	// access costs (the paper's "fixed number of index lookups" claim is
	// assertable from this counter in tests). Atomic because read-only
	// probes may run concurrently once the tree is built.
	probes atomic.Int64
}

// Probes returns the number of point lookups and seeks served. Safe to call
// concurrently with reads.
func (t *Tree) Probes() int { return int(t.probes.Load()) }

type node interface {
	isLeaf() bool
}

type leaf struct {
	keys [][]byte
	vals []any
	next *leaf
}

type internal struct {
	keys     [][]byte // keys[i] = smallest key reachable from children[i+1]
	children []node
}

func (*leaf) isLeaf() bool     { return true }
func (*internal) isLeaf() bool { return false }

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &leaf{}}
}

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.length }

// Put inserts or replaces the value for key. The key bytes are retained; the
// caller must not mutate them afterwards.
func (t *Tree) Put(key []byte, val any) {
	sepKey, right, grew := t.insert(t.root, key, val)
	if grew {
		t.root = &internal{keys: [][]byte{sepKey}, children: []node{t.root, right}}
	}
}

// insert adds key below n; if n split, it returns the separator key and the
// new right sibling.
func (t *Tree) insert(n node, key []byte, val any) (sep []byte, right node, grew bool) {
	switch n := n.(type) {
	case *leaf:
		i := search(n.keys, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			n.vals[i] = val
			return nil, nil, false
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		t.length++
		if len(n.keys) <= degree {
			return nil, nil, false
		}
		mid := len(n.keys) / 2
		r := &leaf{
			keys: append([][]byte(nil), n.keys[mid:]...),
			vals: append([]any(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = r
		return r.keys[0], r, true
	case *internal:
		i := search(n.keys, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			i++ // equal separator keys live in the right child
		}
		sepKey, newChild, split := t.insert(n.children[i], key, val)
		if !split {
			return nil, nil, false
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = sepKey
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = newChild
		if len(n.keys) <= degree {
			return nil, nil, false
		}
		mid := len(n.keys) / 2
		promoted := n.keys[mid]
		r := &internal{
			keys:     append([][]byte(nil), n.keys[mid+1:]...),
			children: append([]node(nil), n.children[mid+1:]...),
		}
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
		return promoted, r, true
	}
	panic("btree: unknown node type")
}

// search returns the smallest index i such that keys[i] >= key.
func search(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) (any, bool) {
	t.probes.Add(1)
	n := t.root
	for {
		switch x := n.(type) {
		case *internal:
			i := search(x.keys, key)
			if i < len(x.keys) && bytes.Equal(x.keys[i], key) {
				i++
			}
			n = x.children[i]
		case *leaf:
			i := search(x.keys, key)
			if i < len(x.keys) && bytes.Equal(x.keys[i], key) {
				return x.vals[i], true
			}
			return nil, false
		}
	}
}

// Iterator walks keys in ascending order from a seek position.
type Iterator struct {
	leaf *leaf
	idx  int
}

// Seek positions an iterator at the first key >= key.
func (t *Tree) Seek(key []byte) *Iterator {
	t.probes.Add(1)
	n := t.root
	for {
		switch x := n.(type) {
		case *internal:
			i := search(x.keys, key)
			if i < len(x.keys) && bytes.Equal(x.keys[i], key) {
				i++
			}
			n = x.children[i]
		case *leaf:
			it := &Iterator{leaf: x, idx: search(x.keys, key)}
			it.skipExhausted()
			return it
		}
	}
}

// Min positions an iterator at the smallest key.
func (t *Tree) Min() *Iterator {
	t.probes.Add(1)
	n := t.root
	for {
		switch x := n.(type) {
		case *internal:
			n = x.children[0]
		case *leaf:
			it := &Iterator{leaf: x}
			it.skipExhausted()
			return it
		}
	}
}

func (it *Iterator) skipExhausted() {
	for it.leaf != nil && it.idx >= len(it.leaf.keys) {
		it.leaf = it.leaf.next
		it.idx = 0
	}
}

// Valid reports whether the iterator is positioned on a key.
func (it *Iterator) Valid() bool { return it.leaf != nil }

// Key returns the current key. Valid must be true.
func (it *Iterator) Key() []byte { return it.leaf.keys[it.idx] }

// Value returns the current value. Valid must be true.
func (it *Iterator) Value() any { return it.leaf.vals[it.idx] }

// Next advances to the following key.
func (it *Iterator) Next() {
	it.idx++
	it.skipExhausted()
}

// ScanPrefix calls visit for every (key, value) whose key starts with
// prefix, in ascending key order, until visit returns false.
func (t *Tree) ScanPrefix(prefix []byte, visit func(key []byte, val any) bool) {
	for it := t.Seek(prefix); it.Valid(); it.Next() {
		if !bytes.HasPrefix(it.Key(), prefix) {
			return
		}
		if !visit(it.Key(), it.Value()) {
			return
		}
	}
}

// ScanRange calls visit for every key in [lo, hi) in ascending order until
// visit returns false. A nil hi means "to the end".
func (t *Tree) ScanRange(lo, hi []byte, visit func(key []byte, val any) bool) {
	for it := t.Seek(lo); it.Valid(); it.Next() {
		if hi != nil && bytes.Compare(it.Key(), hi) >= 0 {
			return
		}
		if !visit(it.Key(), it.Value()) {
			return
		}
	}
}

// Height returns the tree height (1 for a single leaf); used in tests to
// confirm logarithmic growth.
func (t *Tree) Height() int {
	h := 1
	n := t.root
	for {
		x, ok := n.(*internal)
		if !ok {
			return h
		}
		h++
		n = x.children[0]
	}
}
