package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPutGetSmall(t *testing.T) {
	tr := New()
	tr.Put([]byte("b"), 2)
	tr.Put([]byte("a"), 1)
	tr.Put([]byte("c"), 3)
	for k, want := range map[string]int{"a": 1, "b": 2, "c": 3} {
		got, ok := tr.Get([]byte(k))
		if !ok || got.(int) != want {
			t.Errorf("Get(%q) = %v,%v", k, got, ok)
		}
	}
	if _, ok := tr.Get([]byte("z")); ok {
		t.Error("Get(z) should miss")
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestPutReplace(t *testing.T) {
	tr := New()
	tr.Put([]byte("k"), 1)
	tr.Put([]byte("k"), 2)
	if v, _ := tr.Get([]byte("k")); v.(int) != 2 {
		t.Errorf("replace failed: %v", v)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d after replace", tr.Len())
	}
}

func TestLargeSequentialAndRandom(t *testing.T) {
	for name, order := range map[string]func(n int) []int{
		"sequential": func(n int) []int {
			s := make([]int, n)
			for i := range s {
				s[i] = i
			}
			return s
		},
		"reverse": func(n int) []int {
			s := make([]int, n)
			for i := range s {
				s[i] = n - 1 - i
			}
			return s
		},
		"random": func(n int) []int {
			return rand.New(rand.NewSource(1)).Perm(n)
		},
	} {
		t.Run(name, func(t *testing.T) {
			const n = 5000
			tr := New()
			for _, i := range order(n) {
				tr.Put([]byte(fmt.Sprintf("key%06d", i)), i)
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d, want %d", tr.Len(), n)
			}
			for i := 0; i < n; i++ {
				v, ok := tr.Get([]byte(fmt.Sprintf("key%06d", i)))
				if !ok || v.(int) != i {
					t.Fatalf("Get(key%06d) = %v,%v", i, v, ok)
				}
			}
			if h := tr.Height(); h > 4 {
				t.Errorf("height %d too large for %d keys", h, n)
			}
		})
	}
}

func TestIterationSorted(t *testing.T) {
	tr := New()
	keys := rand.New(rand.NewSource(2)).Perm(1000)
	for _, i := range keys {
		tr.Put([]byte(fmt.Sprintf("%05d", i)), i)
	}
	var got []string
	for it := tr.Min(); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	if len(got) != 1000 {
		t.Fatalf("iterated %d keys", len(got))
	}
	if !sort.StringsAreSorted(got) {
		t.Error("iteration out of order")
	}
}

func TestSeek(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i += 2 { // even keys only
		tr.Put([]byte(fmt.Sprintf("%03d", i)), i)
	}
	it := tr.Seek([]byte("051")) // between 050 and 052
	if !it.Valid() || string(it.Key()) != "052" {
		t.Errorf("Seek(051) landed on %q", it.Key())
	}
	it = tr.Seek([]byte("050")) // exact
	if !it.Valid() || string(it.Key()) != "050" {
		t.Errorf("Seek(050) landed on %q", it.Key())
	}
	it = tr.Seek([]byte("999")) // past the end
	if it.Valid() {
		t.Error("Seek(999) should be exhausted")
	}
}

func TestScanPrefix(t *testing.T) {
	tr := New()
	words := []string{"ant", "apple", "applet", "bee", "beetle", "cat"}
	for i, w := range words {
		tr.Put([]byte(w), i)
	}
	var got []string
	tr.ScanPrefix([]byte("app"), func(k []byte, _ any) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"apple", "applet"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("ScanPrefix = %v, want %v", got, want)
	}
	// early stop
	count := 0
	tr.ScanPrefix([]byte(""), func(k []byte, _ any) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestScanRange(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Put([]byte{byte('a' + i)}, i)
	}
	var got []string
	tr.ScanRange([]byte("c"), []byte("f"), func(k []byte, _ any) bool {
		got = append(got, string(k))
		return true
	})
	if fmt.Sprint(got) != "[c d e]" {
		t.Errorf("ScanRange = %v", got)
	}
	got = nil
	tr.ScanRange([]byte("h"), nil, func(k []byte, _ any) bool {
		got = append(got, string(k))
		return true
	})
	if fmt.Sprint(got) != "[h i j]" {
		t.Errorf("open-ended ScanRange = %v", got)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if _, ok := tr.Get([]byte("x")); ok {
		t.Error("Get on empty tree")
	}
	if it := tr.Min(); it.Valid() {
		t.Error("Min on empty tree should be invalid")
	}
	if tr.Len() != 0 {
		t.Error("Len on empty tree")
	}
}

func TestProbesCounted(t *testing.T) {
	tr := New()
	tr.Put([]byte("a"), 1)
	before := tr.Probes()
	tr.Get([]byte("a"))
	tr.Seek([]byte("a"))
	if tr.Probes() != before+2 {
		t.Errorf("Probes = %d, want %d", tr.Probes(), before+2)
	}
}

// TestQuickAgainstMap compares the tree with a reference map model under
// random workloads: every Get and every ordered scan must match.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New()
		ref := map[string]int{}
		for i := 0; i < 400; i++ {
			k := fmt.Sprintf("%04d", r.Intn(300)) // collisions exercise replace
			tr.Put([]byte(k), i)
			ref[k] = i
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get([]byte(k))
			if !ok || got.(int) != v {
				return false
			}
		}
		// ordered scan equals sorted reference keys
		var refKeys []string
		for k := range ref {
			refKeys = append(refKeys, k)
		}
		sort.Strings(refKeys)
		var scanKeys []string
		for it := tr.Min(); it.Valid(); it.Next() {
			scanKeys = append(scanKeys, string(it.Key()))
		}
		if len(refKeys) != len(scanKeys) {
			return false
		}
		for i := range refKeys {
			if refKeys[i] != scanKeys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickSeekSemantics: Seek(k) lands on the smallest key >= k.
func TestQuickSeekSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New()
		var keys [][]byte
		for i := 0; i < 200; i++ {
			k := []byte(fmt.Sprintf("%03d", r.Intn(500)))
			tr.Put(k, nil)
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
		probe := []byte(fmt.Sprintf("%03d", r.Intn(600)))
		it := tr.Seek(probe)
		// reference: first key >= probe
		var want []byte
		for _, k := range keys {
			if bytes.Compare(k, probe) >= 0 {
				want = k
				break
			}
		}
		if want == nil {
			return !it.Valid()
		}
		return it.Valid() && bytes.Equal(it.Key(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
