// The Backend seam: the HTTP layer serves either a single-process
// vxml.Database or a cluster.Coordinator through one interface, so the
// routes, validation, error mapping and wire shapes are written once and
// the distributed deployment is byte-identical to the single-process one at
// the API boundary.

package server

import (
	"context"
	"fmt"
	"iter"
	"sync"

	"vxml"
	"vxml/internal/catalog"
	"vxml/internal/cluster"
	"vxml/internal/diskstore"
)

// Backend is the serving surface the HTTP handlers run against. Both
// implementations — dbBackend around a *vxml.Database, coordBackend around
// a *cluster.Coordinator — resolve views by registered name and return
// byte-identical results for the same corpus and arguments.
type Backend interface {
	// AddDocument, ReplaceDocument and DeleteDocument mutate the corpus
	// (vxml error taxonomy: ErrDuplicateDocument, ErrUnknownDocument,
	// wrapped context errors).
	AddDocument(ctx context.Context, name, xml string) error
	ReplaceDocument(ctx context.Context, name, xml string) error
	DeleteDocument(ctx context.Context, name string) error
	// DefineView compiles and registers a view under name, returning its
	// canonical definition text. With replace unset, an existing name
	// fails with vxml.ErrDuplicateView.
	DefineView(ctx context.Context, name, xquery string, replace bool) (string, error)
	HasView(name string) bool
	ViewCount() int
	DocumentNames() []string
	TotalBytes() int
	Search(ctx context.Context, view string, keywords []string, opts *vxml.Options) ([]vxml.Result, *vxml.Stats, error)
	Results(ctx context.Context, view string, keywords []string, opts *vxml.Options) iter.Seq2[vxml.Result, error]
	Explain(ctx context.Context, view string, keywords []string) (string, error)
	CacheStats() catalog.Stats
	// PlanProbe reports which catalog tier would answer a cached search
	// over the view — "cache_hit", "materialized", "rewritten" or
	// "direct" — plus the view's catalog ID, without evaluating anything.
	PlanProbe(view string, keywords []string) (source, viewID string, err error)
	// Shards reports per-partition counters: corpus shards for a
	// database, cluster slots for a coordinator.
	Shards() []shardInfo
	// DiskStats reports the disk backend's counters; ok is false when the
	// corpus is heap-resident (or served through a coordinator).
	DiskStats() (stats diskstore.Stats, ok bool)
}

// dbBackend adapts a single-process Database plus the named-view registry
// the HTTP layer needs (a Database itself passes compiled *View values).
type dbBackend struct {
	db    *vxml.Database
	mu    sync.RWMutex
	views map[string]*vxml.View
}

func newDBBackend(db *vxml.Database) *dbBackend {
	return &dbBackend{db: db, views: map[string]*vxml.View{}}
}

func (b *dbBackend) view(name string) *vxml.View {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.views[name]
}

// resolve maps a view name to its compiled view or the taxonomy error the
// search and explain paths report for an unknown name.
func (b *dbBackend) resolve(name string) (*vxml.View, error) {
	if v := b.view(name); v != nil {
		return v, nil
	}
	return nil, fmt.Errorf("%w: %q", vxml.ErrUnknownView, name)
}

func (b *dbBackend) AddDocument(_ context.Context, name, xml string) error {
	return b.db.Add(name, xml)
}

func (b *dbBackend) ReplaceDocument(ctx context.Context, name, xml string) error {
	return b.db.ReplaceContext(ctx, name, xml)
}

func (b *dbBackend) DeleteDocument(ctx context.Context, name string) error {
	return b.db.DeleteContext(ctx, name)
}

func (b *dbBackend) DefineView(ctx context.Context, name, xquery string, replace bool) (string, error) {
	view, err := b.db.DefineViewContext(ctx, xquery)
	if err != nil {
		return "", err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.views[name]; dup && !replace {
		return "", fmt.Errorf("%w: %q", vxml.ErrDuplicateView, name)
	}
	b.views[name] = view
	return view.Definition(), nil
}

func (b *dbBackend) HasView(name string) bool { return b.view(name) != nil }

func (b *dbBackend) ViewCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.views)
}

func (b *dbBackend) DocumentNames() []string { return b.db.DocumentNames() }
func (b *dbBackend) TotalBytes() int         { return b.db.TotalBytes() }

func (b *dbBackend) Search(ctx context.Context, view string, keywords []string, opts *vxml.Options) ([]vxml.Result, *vxml.Stats, error) {
	v, err := b.resolve(view)
	if err != nil {
		return nil, nil, err
	}
	return b.db.SearchContext(ctx, v, keywords, opts)
}

func (b *dbBackend) Results(ctx context.Context, view string, keywords []string, opts *vxml.Options) iter.Seq2[vxml.Result, error] {
	v, err := b.resolve(view)
	if err != nil {
		return func(yield func(vxml.Result, error) bool) { yield(vxml.Result{}, err) }
	}
	return b.db.Results(ctx, v, keywords, opts)
}

func (b *dbBackend) Explain(ctx context.Context, view string, keywords []string) (string, error) {
	v, err := b.resolve(view)
	if err != nil {
		return "", err
	}
	return b.db.ExplainContext(ctx, v, keywords)
}

func (b *dbBackend) CacheStats() catalog.Stats { return b.db.CacheStats() }

func (b *dbBackend) PlanProbe(view string, keywords []string) (string, string, error) {
	v, err := b.resolve(view)
	if err != nil {
		return "", "", err
	}
	source, viewID := b.db.PlanProbe(v, keywords)
	return source, viewID, nil
}

func (b *dbBackend) DiskStats() (diskstore.Stats, bool) { return b.db.DiskStats() }

func (b *dbBackend) Shards() []shardInfo {
	shards := b.db.ShardStats()
	out := make([]shardInfo, len(shards))
	for i, sh := range shards {
		out[i] = shardInfo{Shard: sh.Shard, Documents: sh.Documents, Bytes: sh.Bytes, Mutations: sh.Mutations}
	}
	return out
}

// coordBackend adapts a cluster coordinator; view registration, search
// routing and mutation fan-out all live in internal/cluster.
type coordBackend struct {
	coord *cluster.Coordinator
}

func (b *coordBackend) AddDocument(ctx context.Context, name, xml string) error {
	return b.coord.AddDocument(ctx, name, xml)
}

func (b *coordBackend) ReplaceDocument(ctx context.Context, name, xml string) error {
	return b.coord.ReplaceDocument(ctx, name, xml)
}

func (b *coordBackend) DeleteDocument(ctx context.Context, name string) error {
	return b.coord.DeleteDocument(ctx, name)
}

func (b *coordBackend) DefineView(ctx context.Context, name, xquery string, replace bool) (string, error) {
	if replace {
		return b.coord.ForceDefineView(ctx, name, xquery)
	}
	return b.coord.DefineView(ctx, name, xquery)
}

func (b *coordBackend) HasView(name string) bool { return b.coord.HasView(name) }
func (b *coordBackend) ViewCount() int           { return b.coord.ViewCount() }
func (b *coordBackend) DocumentNames() []string  { return b.coord.DocumentNames() }
func (b *coordBackend) TotalBytes() int          { return b.coord.TotalBytes() }
func (b *coordBackend) CacheStats() catalog.Stats { return b.coord.CacheStats() }

func (b *coordBackend) PlanProbe(view string, keywords []string) (string, string, error) {
	return b.coord.PlanProbe(view, keywords)
}

// DiskStats: a coordinator has no local corpus; per-node disk counters
// live on the nodes' own stats surfaces.
func (b *coordBackend) DiskStats() (diskstore.Stats, bool) { return diskstore.Stats{}, false }

func (b *coordBackend) Search(ctx context.Context, view string, keywords []string, opts *vxml.Options) ([]vxml.Result, *vxml.Stats, error) {
	return b.coord.Search(ctx, view, keywords, opts)
}

func (b *coordBackend) Results(ctx context.Context, view string, keywords []string, opts *vxml.Options) iter.Seq2[vxml.Result, error] {
	return b.coord.Results(ctx, view, keywords, opts)
}

func (b *coordBackend) Explain(ctx context.Context, view string, keywords []string) (string, error) {
	return b.coord.Explain(ctx, view, keywords)
}

func (b *coordBackend) Shards() []shardInfo {
	slots := b.coord.Slots()
	out := make([]shardInfo, len(slots))
	for i, sc := range slots {
		// A slot's generation advances once per acknowledged mutation, so
		// it doubles as the mutation counter single-process shards report.
		out[i] = shardInfo{Shard: sc.Slot, Documents: sc.Documents, Bytes: sc.Bytes, Mutations: int(sc.Gen)}
	}
	return out
}
