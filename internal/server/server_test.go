package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"vxml"
)

const booksXML = `<books>
  <book><isbn>111</isbn><title>XML Web Services</title><year>2004</year></book>
  <book><isbn>222</isbn><title>Search Systems</title><year>2001</year></book>
</books>`

const reviewsXML = `<reviews>
  <review><isbn>111</isbn><content>all about search engines</content></review>
  <review><isbn>222</isbn><content>great xml coverage</content></review>
</reviews>`

const bookrevsView = `
for $book in fn:doc(books.xml)/books//book
return <bookrevs>
         <book>{$book/title}</book>,
         {for $rev in fn:doc(reviews.xml)/reviews//review
          where $rev/isbn = $book/isbn
          return $rev/content}
       </bookrevs>`

// newTestServer stands up a Server over a fresh Database behind httptest.
func newTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	db := vxml.Open()
	srv := New(db)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// ingestCorpus loads the demo corpus and the bookrevs view over HTTP.
func ingestCorpus(t *testing.T, base string) {
	t.Helper()
	for name, xml := range map[string]string{"books.xml": booksXML, "reviews.xml": reviewsXML} {
		resp, body := postJSON(t, base+"/documents", map[string]string{"name": name, "xml": xml})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /documents %s: %d %s", name, resp.StatusCode, body)
		}
	}
	resp, body := postJSON(t, base+"/views", map[string]string{"name": "bookrevs", "xquery": bookrevsView})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /views: %d %s", resp.StatusCode, body)
	}
}

func TestSearchHappyPath(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestCorpus(t, ts.URL)

	req := map[string]any{"view": "bookrevs", "keywords": []string{"xml", "search"}, "top_k": 10, "cache": true}
	resp, body := postJSON(t, ts.URL+"/search", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /search: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Results []struct {
			Rank    int            `json:"rank"`
			Score   float64        `json:"score"`
			TF      map[string]int `json:"tf"`
			XML     string         `json:"xml"`
			Snippet string         `json:"snippet"`
		} `json:"results"`
		Stats struct {
			CacheHit bool `json:"cache_hit"`
			Matched  int  `json:"matched"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, body)
	}
	if len(out.Results) == 0 {
		t.Fatal("no results for a matching query")
	}
	if out.Stats.CacheHit {
		t.Error("first search reported a cache hit")
	}
	for i, r := range out.Results {
		if r.Rank != i+1 || r.Score <= 0 || !strings.Contains(r.XML, "<bookrevs>") {
			t.Errorf("result %d malformed: %+v", i, r)
		}
	}

	// The identical repeated request is served from the cache.
	resp, body = postJSON(t, ts.URL+"/search", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat POST /search: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Stats.CacheHit {
		t.Error("repeated identical search missed the cache")
	}
}

func TestMalformedXQueryReturns400WithDiagnostics(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestCorpus(t, ts.URL)
	resp, body := postJSON(t, ts.URL+"/views", map[string]string{
		"name":   "broken",
		"xquery": "for $x in fn:doc(books.xml)/books//book where return",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
	}
	var out struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Error, "compiling view") || len(out.Error) < len("compiling view: x") {
		t.Errorf("missing parse diagnostics in %q", out.Error)
	}
}

func TestUnknownViewReturns404(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestCorpus(t, ts.URL)
	resp, body := postJSON(t, ts.URL+"/search", map[string]any{"view": "nope", "keywords": []string{"xml"}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404; body %s", resp.StatusCode, body)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestCorpus(t, ts.URL)
	cases := []struct {
		name   string
		path   string
		body   any
		status int
	}{
		{"missing keywords", "/search", map[string]any{"view": "bookrevs"}, http.StatusBadRequest},
		{"unknown approach", "/search", map[string]any{"view": "bookrevs", "keywords": []string{"x"}, "approach": "warp"}, http.StatusBadRequest},
		{"negative top_k", "/search", map[string]any{"view": "bookrevs", "keywords": []string{"x"}, "top_k": -1}, http.StatusBadRequest},
		{"unknown field", "/search", map[string]any{"view": "bookrevs", "keywords": []string{"x"}, "frobnicate": 1}, http.StatusBadRequest},
		{"empty document", "/documents", map[string]string{"name": "", "xml": ""}, http.StatusBadRequest},
		{"bad xml", "/documents", map[string]string{"name": "bad.xml", "xml": "<unclosed>"}, http.StatusBadRequest},
		{"duplicate document", "/documents", map[string]string{"name": "books.xml", "xml": booksXML}, http.StatusConflict},
		{"duplicate view", "/views", map[string]string{"name": "bookrevs", "xquery": bookrevsView}, http.StatusConflict},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d; body %s", tc.name, resp.StatusCode, tc.status, body)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestCorpus(t, ts.URL)
	// One miss then one hit.
	req := map[string]any{"view": "bookrevs", "keywords": []string{"xml"}, "cache": true}
	postJSON(t, ts.URL+"/search", req)
	postJSON(t, ts.URL+"/search", req)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	var out struct {
		Documents  []string `json:"documents"`
		TotalBytes int      `json:"total_bytes"`
		Views      int      `json:"views"`
		Cache      struct {
			Hits          int `json:"hits"`
			Misses        int `json:"misses"`
			Invalidations int `json:"invalidations"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Documents) != 2 || out.Views != 1 || out.TotalBytes == 0 {
		t.Errorf("stats = %+v", out)
	}
	if out.Cache.Hits == 0 || out.Cache.Misses == 0 {
		t.Errorf("cache counters = %+v", out.Cache)
	}
	if out.Cache.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2 (one per ingested document)", out.Cache.Invalidations)
	}
}

// TestConcurrentRequestsShareOneDatabase mixes searches, view definitions
// and document ingests from many goroutines against one server; run with
// -race. Every search against the stable view must return the full result
// set regardless of interleaved ingests.
func TestConcurrentRequestsShareOneDatabase(t *testing.T) {
	ts, srv := newTestServer(t)
	ingestCorpus(t, ts.URL)

	// Reference response computed before the storm.
	ref, body := postJSON(t, ts.URL+"/search", map[string]any{"view": "bookrevs", "keywords": []string{"xml"}})
	if ref.StatusCode != http.StatusOK {
		t.Fatalf("reference search: %d %s", ref.StatusCode, body)
	}
	var refOut struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &refOut); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 12)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < 20; i++ {
				payload, _ := json.Marshal(map[string]any{
					"view": "bookrevs", "keywords": []string{"xml"}, "cache": i%2 == 0,
				})
				resp, err := client.Post(ts.URL+"/search", "application/json", bytes.NewReader(payload))
				if err != nil {
					errCh <- err
					return
				}
				var out struct {
					Results []json.RawMessage `json:"results"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close() //nolint:errcheck
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("searcher %d: status %d", g, resp.StatusCode)
					return
				}
				if len(out.Results) != len(refOut.Results) {
					errCh <- fmt.Errorf("searcher %d: %d results, want %d", g, len(out.Results), len(refOut.Results))
					return
				}
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < 10; i++ {
				payload, _ := json.Marshal(map[string]string{
					"name": fmt.Sprintf("extra-%d-%d.xml", g, i),
					"xml":  fmt.Sprintf("<extra><n>doc %d %d</n></extra>", g, i),
				})
				resp, err := client.Post(ts.URL+"/documents", "application/json", bytes.NewReader(payload))
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close() //nolint:errcheck
				if resp.StatusCode != http.StatusCreated {
					errCh <- fmt.Errorf("writer %d: status %d", g, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// All ingests landed in the one shared Database.
	if got, want := len(srv.backend.DocumentNames()), 2+3*10; got != want {
		t.Errorf("documents = %d, want %d", got, want)
	}
}

// TestShardStatsAndParallelSearch covers the sharded-pipeline surface: GET
// /stats reports per-shard corpus counters that add up to the whole
// corpus, POST /search accepts a parallelism bound plus collection-pattern
// views, reports execution counters, and rejects negative parallelism.
func TestShardStatsAndParallelSearch(t *testing.T) {
	ts, _ := newTestServer(t)
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("part-%d.xml", i)
		xml := fmt.Sprintf("<books><article><tl>study %d</tl><bdy>xml search notes</bdy></article></books>", i)
		if resp, body := postJSON(t, ts.URL+"/documents", map[string]string{"name": name, "xml": xml}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /documents %s: %d %s", name, resp.StatusCode, body)
		}
	}
	view := `for $a in fn:collection("part-*")/books//article return <art>{$a/tl}, {$a/bdy}</art>`
	if resp, body := postJSON(t, ts.URL+"/views", map[string]string{"name": "all", "xquery": view}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /views: %d %s", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	var stats struct {
		Documents []string `json:"documents"`
		Shards    []struct {
			Shard     int `json:"shard"`
			Documents int `json:"documents"`
			Bytes     int `json:"bytes"`
		} `json:"shards"`
		TotalBytes int `json:"total_bytes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Shards) == 0 {
		t.Fatal("GET /stats reported no shards")
	}
	docs, bytes := 0, 0
	for _, sh := range stats.Shards {
		docs += sh.Documents
		bytes += sh.Bytes
	}
	if docs != len(stats.Documents) || bytes != stats.TotalBytes {
		t.Errorf("per-shard counters (%d docs, %d bytes) do not add up to corpus (%d docs, %d bytes)",
			docs, bytes, len(stats.Documents), stats.TotalBytes)
	}

	// The same collection search, sequentially and with a worker pool,
	// must agree byte-for-byte; both report their execution counters.
	var outs [2]struct {
		Results []struct {
			XML     string  `json:"xml"`
			Snippet string  `json:"snippet"`
			Score   float64 `json:"score"`
		} `json:"results"`
		Stats struct {
			Workers        int `json:"workers"`
			Candidates     int `json:"candidates"`
			ShardsSearched int `json:"shards_searched"`
		} `json:"stats"`
	}
	for i, parallelism := range []int{1, 4} {
		req := map[string]any{"view": "all", "keywords": []string{"xml", "search"}, "parallelism": parallelism}
		resp, body := postJSON(t, ts.URL+"/search", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /search (parallelism %d): %d %s", parallelism, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &outs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if len(outs[0].Results) == 0 {
		t.Fatal("collection search returned no results")
	}
	if len(outs[0].Results) != len(outs[1].Results) {
		t.Fatalf("sequential returned %d results, parallel %d", len(outs[0].Results), len(outs[1].Results))
	}
	for i := range outs[0].Results {
		if outs[0].Results[i] != outs[1].Results[i] {
			t.Errorf("result %d differs between parallelism settings", i)
		}
	}
	if outs[0].Stats.Workers != 1 || outs[1].Stats.Workers != 4 {
		t.Errorf("workers = %d and %d, want 1 and 4", outs[0].Stats.Workers, outs[1].Stats.Workers)
	}
	if outs[0].Stats.Candidates != 8 || outs[0].Stats.ShardsSearched == 0 {
		t.Errorf("execution counters = %+v", outs[0].Stats)
	}

	if resp, _ := postJSON(t, ts.URL+"/search", map[string]any{"view": "all", "keywords": []string{"x"}, "parallelism": -1}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative parallelism: status %d, want 400", resp.StatusCode)
	}
}
