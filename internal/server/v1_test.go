// Tests for the versioned /v1 surface: route aliasing, the NDJSON
// streaming endpoint, offset pagination over the wire, and the error
// taxonomy → status mapping.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"vxml"
)

// TestV1RoutesAliasLegacy ingests through /v1 and asserts the legacy and
// versioned search routes return byte-identical bodies for the same
// request.
func TestV1RoutesAliasLegacy(t *testing.T) {
	ts, _ := newTestServer(t)
	for name, xml := range map[string]string{"books.xml": booksXML, "reviews.xml": reviewsXML} {
		resp, body := postJSON(t, ts.URL+"/v1/documents", map[string]string{"name": name, "xml": xml})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /v1/documents %s: %d %s", name, resp.StatusCode, body)
		}
	}
	if resp, body := postJSON(t, ts.URL+"/v1/views", map[string]string{"name": "bookrevs", "xquery": bookrevsView}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/views: %d %s", resp.StatusCode, body)
	}

	req := map[string]any{"view": "bookrevs", "keywords": []string{"xml", "search"}, "top_k": 10}
	legacyResp, legacyBody := postJSON(t, ts.URL+"/search", req)
	v1Resp, v1Body := postJSON(t, ts.URL+"/v1/search", req)
	if legacyResp.StatusCode != http.StatusOK || v1Resp.StatusCode != http.StatusOK {
		t.Fatalf("statuses: legacy %d, v1 %d", legacyResp.StatusCode, v1Resp.StatusCode)
	}
	// Timing stats legitimately differ between two runs; the results must
	// not.
	var legacy, v1 struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(legacyBody, &legacy); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(v1Body, &v1); err != nil {
		t.Fatal(err)
	}
	if len(legacy.Results) == 0 || len(legacy.Results) != len(v1.Results) {
		t.Fatalf("legacy %d results, /v1 %d", len(legacy.Results), len(v1.Results))
	}
	for i := range legacy.Results {
		if !bytes.Equal(legacy.Results[i], v1.Results[i]) {
			t.Fatalf("result %d differs:\n%s\nvs\n%s", i, legacy.Results[i], v1.Results[i])
		}
	}

	for _, path := range []string{"/stats", "/v1/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //nolint:errcheck
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d", path, resp.StatusCode)
		}
	}
}

// streamLines POSTs to /v1/search/stream and decodes the NDJSON lines.
func streamLines(t *testing.T, base string, req map[string]any) (*http.Response, []searchResult) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/search/stream", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	var out []searchResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err == nil && probe.Error != "" {
			t.Fatalf("mid-stream error line: %s", line)
		}
		var res searchResult
		if err := json.Unmarshal(line, &res); err != nil {
			t.Fatalf("undecodable stream line %q: %v", line, err)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestSearchStreamMatchesOneShot: the NDJSON lines of /v1/search/stream
// are exactly the results array of /v1/search for the same request,
// including offset/top_k windows; an unknown view is an ordinary 404.
func TestSearchStreamMatchesOneShot(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestCorpus(t, ts.URL)

	for _, window := range []map[string]any{
		{},
		{"top_k": 1},
		{"offset": 1},
		{"offset": 1, "top_k": 1},
	} {
		req := map[string]any{"view": "bookrevs", "keywords": []string{"xml", "search"}}
		for k, v := range window {
			req[k] = v
		}
		oneResp, oneBody := postJSON(t, ts.URL+"/v1/search", req)
		if oneResp.StatusCode != http.StatusOK {
			t.Fatalf("one-shot %v: %d %s", window, oneResp.StatusCode, oneBody)
		}
		var oneShot searchResponse
		if err := json.Unmarshal(oneBody, &oneShot); err != nil {
			t.Fatal(err)
		}
		_, streamed := streamLines(t, ts.URL, req)
		if len(streamed) != len(oneShot.Results) {
			t.Fatalf("window %v: stream yielded %d lines, one-shot %d results", window, len(streamed), len(oneShot.Results))
		}
		for i := range streamed {
			a, _ := json.Marshal(streamed[i])
			b, _ := json.Marshal(oneShot.Results[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("window %v result %d differs:\n%s\nvs\n%s", window, i, a, b)
			}
		}
	}

	// No matches: a successful, empty stream.
	resp, streamed := streamLines(t, ts.URL, map[string]any{"view": "bookrevs", "keywords": []string{"zzzznope"}})
	if resp.StatusCode != http.StatusOK || len(streamed) != 0 {
		t.Fatalf("empty stream: status %d, %d lines", resp.StatusCode, len(streamed))
	}

	// Pre-stream failures are ordinary JSON errors with taxonomy statuses.
	resp, _ = streamLines(t, ts.URL, map[string]any{"view": "nope", "keywords": []string{"xml"}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown view on stream: %d, want 404", resp.StatusCode)
	}
}

// TestOffsetPaginationOverHTTP pages through a collection search and
// checks the concatenation against the unpaged response, plus the
// negative-offset rejection.
func TestOffsetPaginationOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t)
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("part-%d.xml", i)
		xml := fmt.Sprintf("<books><article><tl>study %d</tl><bdy>xml search notes %d</bdy></article></books>", i, i)
		if resp, body := postJSON(t, ts.URL+"/v1/documents", map[string]string{"name": name, "xml": xml}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /v1/documents: %d %s", resp.StatusCode, body)
		}
	}
	view := `for $a in fn:collection("part-*")/books//article return <art>{$a/tl}, {$a/bdy}</art>`
	if resp, body := postJSON(t, ts.URL+"/v1/views", map[string]string{"name": "all", "xquery": view}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/views: %d %s", resp.StatusCode, body)
	}

	unpagedReq := map[string]any{"view": "all", "keywords": []string{"xml"}, "cache": true}
	resp, body := postJSON(t, ts.URL+"/v1/search", unpagedReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unpaged: %d %s", resp.StatusCode, body)
	}
	var unpaged searchResponse
	if err := json.Unmarshal(body, &unpaged); err != nil {
		t.Fatal(err)
	}
	if len(unpaged.Results) != 6 {
		t.Fatalf("unpaged returned %d results, want 6", len(unpaged.Results))
	}

	var paged []searchResult
	sawHit := false
	for off := 0; off < len(unpaged.Results); off += 2 {
		req := map[string]any{"view": "all", "keywords": []string{"xml"}, "offset": off, "top_k": 2, "cache": true}
		resp, body := postJSON(t, ts.URL+"/v1/search", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page offset=%d: %d %s", off, resp.StatusCode, body)
		}
		var page searchResponse
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatal(err)
		}
		sawHit = sawHit || page.Stats.CacheHit
		paged = append(paged, page.Results...)
	}
	if !sawHit {
		t.Error("no page was served from the shared cached full entry")
	}
	if len(paged) != len(unpaged.Results) {
		t.Fatalf("pages concatenate to %d results, unpaged %d", len(paged), len(unpaged.Results))
	}
	for i := range paged {
		// searchResult contains a map; compare via JSON.
		a, _ := json.Marshal(paged[i])
		b, _ := json.Marshal(unpaged.Results[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("result %d differs between paged and unpaged:\n%s\nvs\n%s", i, a, b)
		}
	}

	if resp, _ := postJSON(t, ts.URL+"/v1/search", map[string]any{"view": "all", "keywords": []string{"x"}, "offset": -1}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative offset: status %d, want 400", resp.StatusCode)
	}
}

// TestStatusForTaxonomy pins the error → status table the /v1 docs
// promise.
func TestStatusForTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("wrap: %w", vxml.ErrInvalidOptions), http.StatusBadRequest},
		{&vxml.ParseError{Pos: 3, Msg: "expected 'return'"}, http.StatusBadRequest},
		{fmt.Errorf("wrap: %w", &vxml.ParseError{Pos: 1, Msg: "x"}), http.StatusBadRequest},
		{fmt.Errorf("wrap: %w", vxml.ErrUnknownView), http.StatusNotFound},
		{fmt.Errorf("wrap: %w", vxml.ErrUnknownDocument), http.StatusNotFound},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), http.StatusRequestTimeout},
		{fmt.Errorf("wrap: %w", vxml.ErrDuplicateDocument), http.StatusConflict},
		{fmt.Errorf("wrap: %w", context.Canceled), statusClientClosedRequest},
		{fmt.Errorf("opaque failure"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("statusFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestCanceledRequestStopsSearch drives a search whose request context is
// canceled mid-flight (simulated directly against the handler contract:
// SearchContext with the request ctx) and asserts the taxonomy maps it to
// 499. The HTTP-level disconnect itself is exercised by the CI smoke test
// with curl --max-time.
func TestCanceledRequestStopsSearch(t *testing.T) {
	if !strings.Contains(fmt.Sprint(statusClientClosedRequest), "499") {
		t.Fatalf("statusClientClosedRequest = %d, want 499", statusClientClosedRequest)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	db := vxml.Open()
	db.MustAdd("books.xml", booksXML)
	view, err := db.DefineView(`for $b in fn:doc(books.xml)/books//book return $b`)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = db.SearchContext(ctx, view, []string{"xml"}, nil)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if got := statusFor(err); got != statusClientClosedRequest {
		t.Fatalf("statusFor(canceled search) = %d, want 499", got)
	}
}
