// Tests for POST /v1/explain: the plan-capture route the load harness
// attaches to flagged requests.
package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestExplainRoute covers the happy path (a non-empty plan for a
// registered view, echoing the request identity), the taxonomy statuses
// (404 unknown view, 400 missing keywords), and the /v1-only contract.
func TestExplainRoute(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestCorpus(t, ts.URL)

	resp, body := postJSON(t, ts.URL+"/v1/explain", map[string]any{
		"view": "bookrevs", "keywords": []string{"xml", "search"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/explain: %d %s", resp.StatusCode, body)
	}
	var got struct {
		View     string   `json:"view"`
		Keywords []string `json:"keywords"`
		Plan     string   `json:"plan"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.View != "bookrevs" || len(got.Keywords) != 2 {
		t.Errorf("response does not echo the request identity: %+v", got)
	}
	if got.Plan == "" {
		t.Error("empty plan for a registered view")
	}

	if resp, _ := postJSON(t, ts.URL+"/v1/explain", map[string]any{
		"view": "nope", "keywords": []string{"xml"},
	}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown view: %d, want 404", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/explain", map[string]any{
		"view": "bookrevs",
	}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing keywords: %d, want 400", resp.StatusCode)
	}
	// The route never had an unversioned ancestor; the bare path is a
	// router miss.
	if resp, _ := postJSON(t, ts.URL+"/explain", map[string]any{
		"view": "bookrevs", "keywords": []string{"xml"},
	}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unversioned /explain: %d, want 404 (v1-only route)", resp.StatusCode)
	}
}
