// Docs-drift test: docs/API.md documents every route as a heading of the
// form "## METHOD /v1/path". This test holds that document to the server's
// actual routing table in both directions — a route added without
// documentation fails, and so does documentation for a route that no
// longer exists — so the API reference cannot rot silently.
package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"vxml"
	"vxml/internal/cluster"
)

// apiDocPath locates docs/API.md relative to this package.
const apiDocPath = "../../docs/API.md"

var routeHeading = regexp.MustCompile(`(?m)^## (GET|POST|PUT|DELETE|PATCH|HEAD) (/v1\S*)`)

func TestDocsAPIMatchesRegisteredRoutes(t *testing.T) {
	data, err := os.ReadFile(filepath.FromSlash(apiDocPath))
	if err != nil {
		t.Fatalf("reading %s: %v", apiDocPath, err)
	}
	documented := map[string]bool{}
	for _, m := range routeHeading.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]+" "+m[2]] = true
	}
	if len(documented) == 0 {
		t.Fatalf("%s contains no '## METHOD /v1/...' route headings; the drift check needs them", apiDocPath)
	}

	registered := map[string]bool{}
	for _, r := range New(vxml.Open()).Routes() {
		registered[r] = true
	}

	for r := range registered {
		if !documented[r] {
			t.Errorf("route %q is registered by internal/server but has no '## %s' heading in %s", r, r, apiDocPath)
		}
	}
	for d := range documented {
		if !registered[d] {
			t.Errorf("%s documents %q but internal/server does not register it", apiDocPath, d)
		}
	}
}

// TestDocsAPICoversWireFields holds docs/API.md to the JSON field names of
// the response wire structs whose shapes the docs show: every json tag of
// the search stats, the cache/catalog stats blocks and the explain response
// must appear in the document (as a `"quoted"` example key or a `backtick`
// reference), so a wire field added to a response — plan_source, a catalog
// counter — cannot ship undocumented.
func TestDocsAPICoversWireFields(t *testing.T) {
	data, err := os.ReadFile(filepath.FromSlash(apiDocPath))
	if err != nil {
		t.Fatalf("reading %s: %v", apiDocPath, err)
	}
	doc := string(data)
	for _, s := range []struct {
		name string
		v    any
	}{
		{"searchStats", searchStats{}},
		{"cacheStats", cacheStats{}},
		{"catalogStats", catalogStats{}},
		{"explainResponse", explainResponse{}},
	} {
		rt := reflect.TypeOf(s.v)
		for i := 0; i < rt.NumField(); i++ {
			tag, _, _ := strings.Cut(rt.Field(i).Tag.Get("json"), ",")
			if tag == "" || tag == "-" {
				continue
			}
			if !strings.Contains(doc, `"`+tag+`"`) && !strings.Contains(doc, "`"+tag+"`") {
				t.Errorf("%s serves field %q but %s never mentions it", s.name, tag, apiDocPath)
			}
		}
	}
}

var clusterRouteHeading = regexp.MustCompile(`(?m)^## (GET|POST|PUT|DELETE|PATCH|HEAD) (/cluster/v1\S*)`)

// TestDocsAPIMatchesNodeRoutes holds docs/API.md to the node RPC routing
// table the same way the /v1 check holds it to the public surface: every
// registered /cluster/v1 route needs a heading, and every documented one
// must exist.
func TestDocsAPIMatchesNodeRoutes(t *testing.T) {
	data, err := os.ReadFile(filepath.FromSlash(apiDocPath))
	if err != nil {
		t.Fatalf("reading %s: %v", apiDocPath, err)
	}
	documented := map[string]bool{}
	for _, m := range clusterRouteHeading.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]+" "+m[2]] = true
	}
	if len(documented) == 0 {
		t.Fatalf("%s contains no '## METHOD /cluster/v1/...' route headings; the drift check needs them", apiDocPath)
	}

	registered := map[string]bool{}
	for _, r := range cluster.NewNode().Routes() {
		registered[r] = true
	}

	for r := range registered {
		if !documented[r] {
			t.Errorf("route %q is registered by internal/cluster but has no '## %s' heading in %s", r, r, apiDocPath)
		}
	}
	for d := range documented {
		if !registered[d] {
			t.Errorf("%s documents %q but internal/cluster does not register it", apiDocPath, d)
		}
	}
}

// TestRoutesServeUnderBothPrefixes pins the alias contract the docs
// state: every non-v1-only route answers a scripted request sequence with
// the same statuses under the bare and the /v1 prefix, and none of those
// statuses is a router miss (404/405) — each run uses a fresh server so
// the sequences are independent.
func TestRoutesServeUnderBothPrefixes(t *testing.T) {
	// One step per aliased route, in an order that makes every step
	// succeed: ingest, replace, delete (the name exists thanks to the
	// ingest), re-ingest for the view/search steps, view, search, stats.
	steps := []struct {
		method, path, body string
	}{
		{"POST", "/documents", `{"name":"a.xml","xml":"<notes><note><body>xml search</body></note></notes>"}`},
		{"PUT", "/documents/a.xml", `{"xml":"<notes><note><body>xml revised</body></note></notes>"}`},
		{"DELETE", "/documents/a.xml", ""},
		{"POST", "/documents", `{"name":"b.xml","xml":"<notes><note><body>xml again</body></note></notes>"}`},
		{"POST", "/views", `{"name":"all","xquery":"for $n in fn:collection(\"*.xml\")/notes//note return <hit>{$n/body}</hit>"}`},
		{"POST", "/search", `{"view":"all","keywords":["xml"]}`},
		{"GET", "/stats", ""},
	}
	statuses := func(prefix string) []int {
		h := New(vxml.Open()).Handler()
		var out []int
		for _, st := range steps {
			var body io.Reader
			if st.body != "" {
				body = strings.NewReader(st.body)
			}
			req := httptest.NewRequest(st.method, prefix+st.path, body)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			out = append(out, rec.Code)
		}
		return out
	}
	bare, v1 := statuses(""), statuses("/v1")
	for i, st := range steps {
		if bare[i] != v1[i] {
			t.Errorf("%s %s: alias status %d != /v1 status %d", st.method, st.path, bare[i], v1[i])
		}
		for _, code := range []int{bare[i], v1[i]} {
			if code == http.StatusNotFound || code == http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d looks like a router miss, not a handler answer", st.method, st.path, code)
			}
		}
	}
}
