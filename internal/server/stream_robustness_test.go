// Streaming-endpoint robustness: the in-band error line must be flushed
// (a buffering proxy otherwise holds it until teardown, indistinguishable
// from truncation), a ResponseWriter without per-response write deadline
// support must degrade loudly to the global WriteTimeout instead of
// silently retrying, and the rolling write deadline must cut a stalled
// consumer while letting a healthy-but-slow one finish arbitrarily long
// streams.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vxml"
)

// bufferedStreamRecorder is a ResponseWriter test double that models a
// buffering intermediary: bytes written stay in pending until Flush moves
// them to flushed (the proxy-visible side). It implements http.Flusher but
// deliberately not per-response deadlines, so it also exercises the
// SetWriteDeadline fallback.
type bufferedStreamRecorder struct {
	header  http.Header
	status  int
	pending bytes.Buffer
	flushed bytes.Buffer
	onWrite func(writes int)
	writes  int
}

func (w *bufferedStreamRecorder) Header() http.Header {
	if w.header == nil {
		w.header = http.Header{}
	}
	return w.header
}

func (w *bufferedStreamRecorder) WriteHeader(code int) { w.status = code }

func (w *bufferedStreamRecorder) Write(p []byte) (int, error) {
	w.pending.Write(p)
	w.writes++
	if w.onWrite != nil {
		w.onWrite(w.writes)
	}
	return len(p), nil
}

func (w *bufferedStreamRecorder) Flush() {
	w.flushed.Write(w.pending.Bytes())
	w.pending.Reset()
}

// newStreamTestServer builds a Server (not yet listening) over the small
// books/reviews corpus with the bookrevs view registered and logs routed
// to the test.
func newStreamTestServer(t *testing.T) *Server {
	t.Helper()
	db := vxml.Open()
	db.MustAdd("books.xml", booksXML)
	db.MustAdd("reviews.xml", reviewsXML)
	srv := New(db)
	srv.logf = t.Logf
	if err := srv.DefineView("bookrevs", bookrevsView); err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestStreamMidStreamErrorLineFlushed cancels the request context after
// the first NDJSON line is written, forcing the iterator to deliver a
// mid-stream error. The in-band {"error": ...} line must be flushed
// through the buffering double before the handler returns — an unflushed
// error line is exactly what a client behind a proxy cannot distinguish
// from truncation.
func TestStreamMidStreamErrorLineFlushed(t *testing.T) {
	srv := newStreamTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body := `{"view":"bookrevs","keywords":["xml","search"],"disjunctive":true}`
	req := httptest.NewRequest(http.MethodPost, "/v1/search/stream", strings.NewReader(body)).WithContext(ctx)
	rec := &bufferedStreamRecorder{}
	rec.onWrite = func(writes int) {
		if writes == 1 {
			cancel() // first result line is out; the next winner must fail
		}
	}
	srv.handleSearchStream(rec, req)

	if rec.pending.Len() != 0 {
		t.Errorf("handler returned with %d unflushed bytes still buffered: %q", rec.pending.Len(), rec.pending.String())
	}
	flushed := rec.flushed.String()
	lines := nonEmptyLines(flushed)
	if len(lines) < 2 {
		t.Fatalf("want at least one result line and the error line flushed, got %d lines: %q", len(lines), flushed)
	}
	var last errorBody
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil || last.Error == "" {
		t.Fatalf("final flushed line is not an in-band error: %q (unmarshal err %v)", lines[len(lines)-1], err)
	}
}

// TestStreamDeadlineUnsupportedFallsBackOnce streams through a writer
// without SetWriteDeadline support: the stream must still complete, and
// the degradation must be logged exactly once per server, not once per
// line or per request.
func TestStreamDeadlineUnsupportedFallsBackOnce(t *testing.T) {
	srv := newStreamTestServer(t)
	var logs []string
	srv.logf = func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) }

	for i := 0; i < 2; i++ {
		body := `{"view":"bookrevs","keywords":["xml","search"],"disjunctive":true}`
		req := httptest.NewRequest(http.MethodPost, "/v1/search/stream", strings.NewReader(body))
		rec := &bufferedStreamRecorder{}
		srv.handleSearchStream(rec, req)
		lines := nonEmptyLines(rec.flushed.String())
		if len(lines) != 2 {
			t.Fatalf("request %d: want the full 2-result stream despite the missing deadline support, got %d lines: %q",
				i, len(lines), rec.flushed.String())
		}
		for _, line := range lines {
			var res searchResult
			if err := json.Unmarshal([]byte(line), &res); err != nil || res.XML == "" {
				t.Fatalf("request %d: malformed result line %q (err %v)", i, line, err)
			}
		}
	}
	if len(logs) != 1 {
		t.Fatalf("want the unsupported-deadline fallback logged exactly once across requests, got %d: %v", len(logs), logs)
	}
	if !strings.Contains(logs[0], "write deadline") {
		t.Errorf("fallback log does not name the write deadline: %q", logs[0])
	}
}

// nonEmptyLines splits NDJSON output into its non-empty lines.
func nonEmptyLines(s string) []string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.TrimSpace(line) != "" {
			out = append(out, line)
		}
	}
	return out
}

// bigStreamNotes is the line count of the slow-consumer stream: sized so
// the full NDJSON body (~6.5 MB) comfortably exceeds what loopback socket
// buffers can absorb, forcing the server's writes to actually block on a
// consumer that stops reading.
const bigStreamNotes = 1600

// newBigStreamServer serves a corpus whose "big" view yields
// bigStreamNotes results of ~4 KB each, with the stream write grace
// shortened so the test observes the deadline in test time.
func newBigStreamServer(t *testing.T, grace time.Duration) *httptest.Server {
	t.Helper()
	db := vxml.Open()
	filler := strings.Repeat("lorem vxml stream data payload words here ", 96) // ~4 KB
	var sb strings.Builder
	sb.WriteString("<notes>")
	for i := 0; i < bigStreamNotes; i++ {
		fmt.Fprintf(&sb, "<note><body>streamkey %s n%d</body></note>", filler, i)
	}
	sb.WriteString("</notes>")
	db.MustAdd("big.xml", sb.String())
	srv := New(db)
	srv.streamGrace = grace
	srv.logf = t.Logf
	if err := srv.DefineView("big", `for $n in fn:doc(big.xml)/notes//note return <hit>{$n/body}</hit>`); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// streamBigRequest opens the NDJSON stream over the big view.
func streamBigRequest(t *testing.T, base string) *http.Response {
	t.Helper()
	body := `{"view":"big","keywords":["streamkey"],"top_k":0}`
	resp, err := http.Post(base+"/v1/search/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	return resp
}

// TestStreamRollingWriteDeadline pins both halves of the rolling-deadline
// contract over a real connection: a consumer that stalls past the grace
// is cut, while a healthy-but-slow consumer whose total read time far
// exceeds the grace still receives every line.
func TestStreamRollingWriteDeadline(t *testing.T) {
	const grace = 250 * time.Millisecond
	ts := newBigStreamServer(t, grace)

	t.Run("stalled consumer is cut", func(t *testing.T) {
		resp := streamBigRequest(t, ts.URL)
		defer resp.Body.Close() //nolint:errcheck
		br := bufio.NewReader(resp.Body)
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatalf("reading first line: %v", err)
		}
		// Stall well past the grace without reading; socket buffers fill,
		// the server's next write blocks, and the deadline must cut it.
		time.Sleep(4 * grace)
		lines, readErr := 1, error(nil)
		for {
			if _, err := br.ReadString('\n'); err != nil {
				readErr = err
				break
			}
			lines++
		}
		if lines >= bigStreamNotes {
			t.Fatalf("stalled consumer still received the entire %d-line stream (readErr %v); the rolling deadline did not cut it", lines, readErr)
		}
		t.Logf("stream cut after %d/%d lines (%v)", lines, bigStreamNotes, readErr)
	})

	t.Run("healthy slow consumer survives", func(t *testing.T) {
		resp := streamBigRequest(t, ts.URL)
		defer resp.Body.Close() //nolint:errcheck
		br := bufio.NewReader(resp.Body)
		start := time.Now()
		lines := 0
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				break
			}
			if strings.Contains(line, `"error"`) {
				t.Fatalf("in-band error after %d lines: %s", lines, line)
			}
			lines++
			// Pace the read so the whole stream takes several times the
			// grace — only a per-line rolling deadline survives that.
			if lines%20 == 0 {
				time.Sleep(5 * time.Millisecond)
			}
		}
		if lines != bigStreamNotes {
			t.Fatalf("slow consumer got %d/%d lines", lines, bigStreamNotes)
		}
		if elapsed := time.Since(start); elapsed < grace {
			t.Logf("warning: paced read finished in %v, under the %v grace; the rolling property was not stressed", elapsed, grace)
		}
	})
}
