// Regression test for the read-only toggle: SetReadOnly used to write a
// plain bool that forbidMutation read from handler goroutines, so flipping
// read-only on a serving server was a data race. The flag is atomic now;
// this test pins that by hammering the mutation routes from many
// goroutines while another flips the flag, and must stay -race clean.
package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestReadOnlyToggleUnderConcurrentMutations flips SetReadOnly while
// concurrent clients add, replace and delete documents. Every response
// must be a deliberate handler answer — created/OK, 403 from the gate, or
// 404 when a delete raced a delete — and the run must be race-clean.
func TestReadOnlyToggleUnderConcurrentMutations(t *testing.T) {
	ts, srv := newTestServer(t)

	stop := make(chan struct{})
	var toggles sync.WaitGroup
	toggles.Add(1)
	go func() {
		defer toggles.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				srv.SetReadOnly(false)
				return
			default:
			}
			srv.SetReadOnly(i%2 == 0)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const clients = 8
	const opsPerClient = 40
	var wg sync.WaitGroup
	errs := make(chan error, clients*opsPerClient*3)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				name := fmt.Sprintf("doc-%d-%d.xml", c, i)
				resp, body := postJSON(t, ts.URL+"/v1/documents",
					map[string]string{"name": name, "xml": "<notes><note><body>toggle race</body></note></notes>"})
				if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusForbidden {
					errs <- fmt.Errorf("POST %s: unexpected status %d: %s", name, resp.StatusCode, body)
					continue
				}
				if resp.StatusCode == http.StatusForbidden {
					continue // gate closed before the add; nothing to mutate
				}
				req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/documents/"+name, nil)
				if err != nil {
					errs <- err
					continue
				}
				del, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					continue
				}
				del.Body.Close() //nolint:errcheck
				if del.StatusCode != http.StatusOK && del.StatusCode != http.StatusForbidden {
					errs <- fmt.Errorf("DELETE %s: unexpected status %d", name, del.StatusCode)
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	toggles.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The gate still enforces and releases deterministically once the
	// toggling stops.
	srv.SetReadOnly(true)
	if resp, _ := postJSON(t, ts.URL+"/v1/documents", map[string]string{"name": "final.xml", "xml": "<a><b>x</b></a>"}); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only server answered %d to a mutation, want 403", resp.StatusCode)
	}
	srv.SetReadOnly(false)
	if resp, body := postJSON(t, ts.URL+"/v1/documents", map[string]string{"name": "final.xml", "xml": "<a><b>x</b></a>"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("writable server answered %d to a mutation, want 201: %s", resp.StatusCode, body)
	}
}
