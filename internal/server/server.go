// Package server exposes a vxml.Database as a JSON HTTP service. All
// handlers share one Database; its internal locking makes concurrent
// requests safe, so the server adds synchronization only for its own named
// view registry.
//
// Endpoints:
//
//	POST /documents  {"name": "books.xml", "xml": "<books>...</books>"}
//	POST /views      {"name": "recent", "xquery": "for $b in ..."}
//	POST /search     {"view": "recent", "keywords": ["xml","search"],
//	                  "top_k": 10, "disjunctive": false,
//	                  "approach": "efficient", "cache": true}
//	GET  /stats
//
// Malformed JSON or XQuery yields 400 with diagnostics, an unknown view
// 404, a duplicate document or view name 409.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"vxml"
)

// Server routes HTTP requests to a shared Database and a named view
// registry.
type Server struct {
	db      *vxml.Database
	started time.Time

	mu    sync.RWMutex
	views map[string]*vxml.View
}

// New builds a server around db with an empty view registry.
func New(db *vxml.Database) *Server {
	return &Server{db: db, started: time.Now(), views: map[string]*vxml.View{}}
}

// DefineView compiles and registers a view under name (used by the binary
// to pre-register views from the command line; the HTTP path is POST
// /views). Registering an existing name replaces it.
func (s *Server) DefineView(name, xquery string) error {
	view, err := s.db.DefineView(xquery)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.views[name] = view
	s.mu.Unlock()
	return nil
}

// view returns the registered view, or nil.
func (s *Server) view(name string) *vxml.View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.views[name]
}

// viewCount returns the number of registered views.
func (s *Server) viewCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.views)
}

// Handler returns the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /documents", s.handleAddDocument)
	mux.HandleFunc("POST /views", s.handleDefineView)
	mux.HandleFunc("POST /search", s.handleSearch)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds request bodies (documents included) so a single
// oversized POST cannot drive the process out of memory.
const maxBodyBytes = 64 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, "decoding request body: %v", err)
		return false
	}
	return true
}

type addDocumentRequest struct {
	Name string `json:"name"`
	XML  string `json:"xml"`
}

type addDocumentResponse struct {
	Name      string   `json:"name"`
	Documents []string `json:"documents"`
}

func (s *Server) handleAddDocument(w http.ResponseWriter, r *http.Request) {
	var req addDocumentRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" || req.XML == "" {
		writeError(w, http.StatusBadRequest, "both name and xml are required")
		return
	}
	if err := s.db.Add(req.Name, req.XML); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, vxml.ErrDuplicateDocument) {
			status = http.StatusConflict
		}
		writeError(w, status, "adding document: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, addDocumentResponse{Name: req.Name, Documents: s.db.DocumentNames()})
}

type defineViewRequest struct {
	Name   string `json:"name"`
	XQuery string `json:"xquery"`
}

type defineViewResponse struct {
	Name       string `json:"name"`
	Definition string `json:"definition"`
}

func (s *Server) handleDefineView(w http.ResponseWriter, r *http.Request) {
	var req defineViewRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" || req.XQuery == "" {
		writeError(w, http.StatusBadRequest, "both name and xquery are required")
		return
	}
	// Cheap name pre-check so a duplicate registration (e.g. a client
	// retry) is rejected before paying for the compile; the registry is
	// re-checked under the lock below, which stays authoritative.
	if s.view(req.Name) != nil {
		writeError(w, http.StatusConflict, "view %q already defined", req.Name)
		return
	}
	view, err := s.db.DefineView(req.XQuery)
	if err != nil {
		// Parse and compile diagnostics go to the caller: this is the
		// malformed-XQuery → 400 path.
		writeError(w, http.StatusBadRequest, "compiling view: %v", err)
		return
	}
	s.mu.Lock()
	_, dup := s.views[req.Name]
	if !dup {
		s.views[req.Name] = view
	}
	s.mu.Unlock()
	if dup {
		writeError(w, http.StatusConflict, "view %q already defined", req.Name)
		return
	}
	writeJSON(w, http.StatusCreated, defineViewResponse{Name: req.Name, Definition: view.Definition()})
}

type searchRequest struct {
	View        string   `json:"view"`
	Keywords    []string `json:"keywords"`
	TopK        int      `json:"top_k"`
	Disjunctive bool     `json:"disjunctive"`
	Approach    string   `json:"approach"`
	Cache       bool     `json:"cache"`
	// Parallelism bounds the search's worker pool: 0 = GOMAXPROCS (the
	// default), 1 = sequential. Results are identical at every setting.
	Parallelism int `json:"parallelism"`
}

type searchResult struct {
	Rank    int            `json:"rank"`
	Score   float64        `json:"score"`
	TF      map[string]int `json:"tf"`
	XML     string         `json:"xml"`
	Snippet string         `json:"snippet"`
}

type searchStats struct {
	PDTTimeMicros  int64 `json:"pdt_time_us"`
	EvalTimeMicros int64 `json:"eval_time_us"`
	PostTimeMicros int64 `json:"post_time_us"`
	TotalMicros    int64 `json:"total_us"`
	PDTNodes       int   `json:"pdt_nodes"`
	ViewSize       int   `json:"view_size"`
	Matched        int   `json:"matched"`
	BaseData       int   `json:"base_data"`
	CacheHit       bool  `json:"cache_hit"`
	Workers        int   `json:"workers"`
	Candidates     int   `json:"candidates"`
	ShardsSearched int   `json:"shards_searched"`
}

type searchResponse struct {
	Results []searchResult `json:"results"`
	Stats   searchStats    `json:"stats"`
}

// parseApproach maps the wire name to the pipeline selector.
func parseApproach(name string) (vxml.Approach, error) {
	switch name {
	case "", "efficient":
		return vxml.Efficient, nil
	case "baseline":
		return vxml.Baseline, nil
	case "gtp":
		return vxml.GTPTermJoin, nil
	}
	return 0, fmt.Errorf("unknown approach %q (want efficient, baseline or gtp)", name)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Keywords) == 0 {
		writeError(w, http.StatusBadRequest, "keywords are required")
		return
	}
	if req.TopK < 0 {
		writeError(w, http.StatusBadRequest, "top_k must be >= 0 (0 returns all results), got %d", req.TopK)
		return
	}
	if req.Parallelism < 0 {
		writeError(w, http.StatusBadRequest, "parallelism must be >= 0 (0 uses all CPUs, 1 is sequential), got %d", req.Parallelism)
		return
	}
	view := s.view(req.View)
	if view == nil {
		writeError(w, http.StatusNotFound, "unknown view %q", req.View)
		return
	}
	approach, err := parseApproach(req.Approach)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	results, stats, err := s.db.Search(view, req.Keywords, &vxml.Options{
		TopK:        req.TopK,
		Disjunctive: req.Disjunctive,
		Approach:    approach,
		Cache:       req.Cache,
		Parallelism: req.Parallelism,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "search: %v", err)
		return
	}
	resp := searchResponse{
		Results: make([]searchResult, len(results)),
		Stats: searchStats{
			PDTTimeMicros:  stats.PDTTime.Microseconds(),
			EvalTimeMicros: stats.EvalTime.Microseconds(),
			PostTimeMicros: stats.PostTime.Microseconds(),
			TotalMicros:    stats.Total.Microseconds(),
			PDTNodes:       stats.PDTNodes,
			ViewSize:       stats.ViewSize,
			Matched:        stats.Matched,
			BaseData:       stats.BaseData,
			CacheHit:       stats.CacheHit,
			Workers:        stats.Workers,
			Candidates:     stats.Candidates,
			ShardsSearched: stats.ShardsSearched,
		},
	}
	for i, res := range results {
		resp.Results[i] = searchResult{Rank: res.Rank, Score: res.Score, TF: res.TF, XML: res.XML, Snippet: res.Snippet}
	}
	writeJSON(w, http.StatusOK, resp)
}

type statsResponse struct {
	Documents  []string    `json:"documents"`
	TotalBytes int         `json:"total_bytes"`
	Views      int         `json:"views"`
	Shards     []shardInfo `json:"shards"`
	Cache      cacheStats  `json:"cache"`
	Uptime     string      `json:"uptime"`
}

// shardInfo is one corpus shard's counters in GET /stats.
type shardInfo struct {
	Shard     int `json:"shard"`
	Documents int `json:"documents"`
	Bytes     int `json:"bytes"`
}

type cacheStats struct {
	Hits          int `json:"hits"`
	Misses        int `json:"misses"`
	Evictions     int `json:"evictions"`
	Invalidations int `json:"invalidations"`
	Entries       int `json:"entries"`
	Capacity      int `json:"capacity"`
	Bytes         int `json:"bytes"`
	MaxBytes      int `json:"max_bytes"`
	Generation    int `json:"generation"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.db.CacheStats()
	shards := s.db.ShardStats()
	resp := statsResponse{
		Documents:  s.db.DocumentNames(),
		TotalBytes: s.db.TotalBytes(),
		Views:      s.viewCount(),
		Shards:     make([]shardInfo, len(shards)),
		Cache: cacheStats{
			Hits:          cs.Hits,
			Misses:        cs.Misses,
			Evictions:     cs.Evictions,
			Invalidations: cs.Invalidations,
			Entries:       cs.Entries,
			Capacity:      cs.Capacity,
			Bytes:         cs.Bytes,
			MaxBytes:      cs.MaxBytes,
			Generation:    cs.Generation,
		},
	}
	for i, sh := range shards {
		resp.Shards[i] = shardInfo{Shard: sh.Shard, Documents: sh.Documents, Bytes: sh.Bytes}
	}
	resp.Uptime = time.Since(s.started).Round(time.Millisecond).String()
	writeJSON(w, http.StatusOK, resp)
}
