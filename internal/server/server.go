// Package server exposes a vxml.Database as a JSON HTTP service. All
// handlers share one Database; its internal locking makes concurrent
// requests safe, so the server adds synchronization only for its own named
// view registry.
//
// Endpoints (versioned under /v1; the unversioned paths are aliases kept
// for compatibility):
//
//	POST   /v1/documents        {"name": "books.xml", "xml": "<books>...</books>"}
//	PUT    /v1/documents/{name} {"xml": "<books>...</books>"}  (replace; 404 if absent)
//	DELETE /v1/documents/{name}                                (404 if absent)
//	POST /v1/views          {"name": "recent", "xquery": "for $b in ..."}
//	POST /v1/search         {"view": "recent", "keywords": ["xml","search"],
//	                         "top_k": 10, "offset": 0, "disjunctive": false,
//	                         "approach": "efficient", "cache": true}
//	POST /v1/search/stream  same request; responds with NDJSON, one result
//	                        object per line, written as the pipeline yields
//	                        each ranked winner (no /v1-less alias)
//	POST /v1/explain        {"view": "recent", "keywords": ["xml","search"]}
//	                        renders the query plan without evaluating
//	                        anything (no /v1-less alias)
//	GET  /v1/stats
//
// Every search runs under the request's context, so a client that
// disconnects or times out cancels the pipeline mid-flight. Failures map
// through the vxml error taxonomy: malformed JSON, XQuery (ParseError) or
// options (ErrInvalidOptions) yield 400 with diagnostics, an unknown view
// or document 404, a deadline 408, a duplicate document or view name 409,
// and a canceled request 499 (the nginx convention for "client closed
// request").
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vxml"
	"vxml/internal/cluster"
	"vxml/internal/diskstore"
)

// Server routes HTTP requests to a shared Backend — a single-process
// Database or a cluster Coordinator — and its named view registry.
type Server struct {
	backend  Backend
	started  time.Time
	readOnly atomic.Bool

	// streamGrace is the rolling per-line write deadline for the NDJSON
	// streaming endpoint (streamWriteGrace by default; tests shorten it).
	streamGrace time.Duration
	// logf is the server's log sink (log.Printf by default; tests capture
	// it). deadlineLogOnce rate-limits the write-deadline-unsupported
	// warning to once per server — the condition is a property of the
	// middleware stack, not of any one request.
	logf            func(format string, args ...any)
	deadlineLogOnce sync.Once
}

// New builds a server around a single-process database with an empty view
// registry.
func New(db *vxml.Database) *Server {
	return NewBackend(newDBBackend(db))
}

// NewCluster builds a server that serves the public /v1 API through a
// cluster coordinator: same routes, same wire shapes, byte-identical
// results — plus the degraded-mode surface (502 partial results with
// per-node status) only a distributed backend can produce.
func NewCluster(coord *cluster.Coordinator) *Server {
	return NewBackend(&coordBackend{coord: coord})
}

// NewBackend builds a server around an arbitrary Backend.
func NewBackend(b Backend) *Server {
	return &Server{
		backend:     b,
		started:     time.Now(),
		streamGrace: streamWriteGrace,
		logf:        log.Printf,
	}
}

// SetReadOnly gates the corpus-mutating routes (POST/PUT/DELETE under
// /documents): when set, they answer 403 and the corpus can only change
// through whatever loaded it at startup. Views may still be defined — they
// are derived, not base data. The flag is atomic, so it can be flipped
// while the handler is serving: requests observe either the old or the new
// setting, never a torn state.
func (s *Server) SetReadOnly(v bool) { s.readOnly.Store(v) }

// DefineView compiles and registers a view under name (used by the binary
// to pre-register views from the command line; the HTTP path is POST
// /views). Registering an existing name replaces it.
func (s *Server) DefineView(name, xquery string) error {
	_, err := s.backend.DefineView(context.Background(), name, xquery, true)
	return err
}

// route is one entry of the server's routing table: the canonical /v1
// method and path, the handler, and whether the route also serves an
// unversioned alias (every pre-versioning route does; routes added after
// versioning are /v1-only).
type route struct {
	method  string
	path    string // versionless, e.g. "/documents/{name}"
	handler http.HandlerFunc
	v1Only  bool
}

// routes is the single source of the routing table: Handler registers it
// and Routes exposes it, so the docs-drift test can hold docs/API.md to
// exactly this list.
func (s *Server) routes() []route {
	return []route{
		{method: "POST", path: "/documents", handler: s.handleAddDocument},
		{method: "PUT", path: "/documents/{name}", handler: s.handleReplaceDocument},
		{method: "DELETE", path: "/documents/{name}", handler: s.handleDeleteDocument},
		{method: "POST", path: "/views", handler: s.handleDefineView},
		{method: "POST", path: "/search", handler: s.handleSearch},
		{method: "POST", path: "/search/stream", handler: s.handleSearchStream, v1Only: true},
		{method: "POST", path: "/explain", handler: s.handleExplain, v1Only: true},
		{method: "GET", path: "/stats", handler: s.handleStats},
	}
}

// Routes returns every registered route in its canonical /v1 form, e.g.
// "POST /v1/search". The docs-drift test cross-checks this list against
// docs/API.md in both directions, so the API reference cannot rot silently.
func (s *Server) Routes() []string {
	var out []string
	for _, r := range s.routes() {
		out = append(out, r.method+" /v1"+r.path)
	}
	return out
}

// Handler returns the HTTP routing table: the /v1 routes plus unversioned
// aliases of the same handlers. Pre-versioning request and success-response
// shapes are unchanged; error statuses follow the v1 taxonomy everywhere,
// which deliberately moves two legacy behaviors: a view over an
// unregistered document is now 404 (was 400), and a canceled or expired
// request surfaces as 499/408 (previously the search always ran to
// completion). The streaming endpoint exists only under /v1 (it never had
// an unversioned ancestor).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range s.routes() {
		mux.HandleFunc(r.method+" /v1"+r.path, r.handler)
		if !r.v1Only {
			mux.HandleFunc(r.method+" "+r.path, r.handler)
		}
	}
	return mux
}

// statusClientClosedRequest is the de-facto (nginx) status for a request
// whose client went away before the response; net/http has no name for it.
const statusClientClosedRequest = 499

// statusFor maps the vxml error taxonomy to HTTP statuses:
// ErrInvalidOptions, ParseError and cluster.ErrUnroutableView to 400,
// ErrUnknownView and ErrUnknownDocument to 404, context.DeadlineExceeded
// to 408, ErrDuplicateDocument and ErrDuplicateView to 409,
// context.Canceled to 499, ErrPartialCluster to 502 (the response body
// still carries the surviving partitions' results),
// cluster.ErrNodeUnavailable to 502 (a mutation could not reach the
// owning primary), cluster.ErrStaleGeneration to 503 (transient: the
// search kept racing mutations; retry), anything unclassified to 500.
func statusFor(err error) int {
	var pe *vxml.ParseError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, vxml.ErrUnknownView), errors.Is(err, vxml.ErrUnknownDocument):
		return http.StatusNotFound
	case errors.Is(err, vxml.ErrDuplicateDocument), errors.Is(err, vxml.ErrDuplicateView):
		return http.StatusConflict
	case errors.Is(err, vxml.ErrPartialCluster), errors.Is(err, cluster.ErrNodeUnavailable):
		return http.StatusBadGateway
	case errors.Is(err, cluster.ErrStaleGeneration):
		return http.StatusServiceUnavailable
	case errors.Is(err, vxml.ErrInvalidOptions), errors.Is(err, cluster.ErrUnroutableView), errors.As(err, &pe):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds request bodies (documents included) so a single
// oversized POST cannot drive the process out of memory.
const maxBodyBytes = 64 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, "decoding request body: %v", err)
		return false
	}
	return true
}

type addDocumentRequest struct {
	Name string `json:"name"`
	XML  string `json:"xml"`
}

type addDocumentResponse struct {
	Name      string   `json:"name"`
	Documents []string `json:"documents"`
}

// forbidMutation enforces SetReadOnly for the corpus-mutating handlers,
// writing the 403 itself when it returns true. The flag is loaded exactly
// once per call, so a concurrent toggle cannot make this answer 403 and
// then let the mutation through anyway (or vice versa).
func (s *Server) forbidMutation(w http.ResponseWriter) bool {
	if !s.readOnly.Load() {
		return false
	}
	writeError(w, http.StatusForbidden, "server is read-only: document mutation is disabled")
	return true
}

func (s *Server) handleAddDocument(w http.ResponseWriter, r *http.Request) {
	if s.forbidMutation(w) {
		return
	}
	var req addDocumentRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" || req.XML == "" {
		writeError(w, http.StatusBadRequest, "both name and xml are required")
		return
	}
	if err := s.backend.AddDocument(r.Context(), req.Name, req.XML); err != nil {
		// statusFor classifies duplicates (409) and cluster conditions
		// (502); an XML parse failure is unclassified but still the
		// client's bad body, so the fallback is 400, not 500.
		status := statusFor(err)
		if status == http.StatusInternalServerError {
			status = http.StatusBadRequest
		}
		writeError(w, status, "adding document: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, addDocumentResponse{Name: req.Name, Documents: s.backend.DocumentNames()})
}

// replaceDocumentRequest is the body of PUT /v1/documents/{name}; the name
// comes from the path, so only the new content travels in the body.
type replaceDocumentRequest struct {
	XML string `json:"xml"`
}

// handleReplaceDocument is PUT /v1/documents/{name}: atomically swap the
// named document's content. The replacement is visible to every search that
// starts after the response, on every pipeline; searches in flight complete
// against the old content. 404 for a name that was never added (PUT does
// not upsert — a typoed name should fail loudly, not fork the corpus), 400
// for malformed XML.
func (s *Server) handleReplaceDocument(w http.ResponseWriter, r *http.Request) {
	if s.forbidMutation(w) {
		return
	}
	name := r.PathValue("name")
	var req replaceDocumentRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.XML == "" {
		writeError(w, http.StatusBadRequest, "xml is required")
		return
	}
	if err := s.backend.ReplaceDocument(r.Context(), name, req.XML); err != nil {
		// statusFor classifies unknown-name (404) and context failures; an
		// XML parse failure is unclassified but still the client's bad
		// body, so the fallback is 400, not 500.
		status := statusFor(err)
		if status == http.StatusInternalServerError {
			status = http.StatusBadRequest
		}
		writeError(w, status, "replacing document: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, addDocumentResponse{Name: name, Documents: s.backend.DocumentNames()})
}

// handleDeleteDocument is DELETE /v1/documents/{name}: remove the named
// document from the corpus. Subsequent searches no longer see it (a literal
// fn:doc view over the name yields nothing; collection patterns skip it);
// searches in flight complete against the old corpus. 404 for an unknown
// name.
func (s *Server) handleDeleteDocument(w http.ResponseWriter, r *http.Request) {
	if s.forbidMutation(w) {
		return
	}
	name := r.PathValue("name")
	if err := s.backend.DeleteDocument(r.Context(), name); err != nil {
		writeError(w, statusFor(err), "deleting document: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, addDocumentResponse{Name: name, Documents: s.backend.DocumentNames()})
}

type defineViewRequest struct {
	Name   string `json:"name"`
	XQuery string `json:"xquery"`
}

type defineViewResponse struct {
	Name       string `json:"name"`
	Definition string `json:"definition"`
}

func (s *Server) handleDefineView(w http.ResponseWriter, r *http.Request) {
	var req defineViewRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" || req.XQuery == "" {
		writeError(w, http.StatusBadRequest, "both name and xquery are required")
		return
	}
	// Cheap name pre-check so a duplicate registration (e.g. a client
	// retry) is rejected before paying for the compile; the backend
	// registry re-checks, and stays authoritative.
	if s.backend.HasView(req.Name) {
		writeError(w, http.StatusConflict, "view %q already defined", req.Name)
		return
	}
	definition, err := s.backend.DefineView(r.Context(), req.Name, req.XQuery, false)
	if err != nil {
		if errors.Is(err, vxml.ErrDuplicateView) {
			writeError(w, http.StatusConflict, "view %q already defined", req.Name)
			return
		}
		// Parse and compile diagnostics go to the caller: a ParseError is
		// the malformed-XQuery → 400 path, an unknown fn:doc reference →
		// 404; any other compile rejection still means the client's query
		// was unusable, so the fallback is 400, not 500.
		status := statusFor(err)
		if status == http.StatusInternalServerError {
			status = http.StatusBadRequest
		}
		writeError(w, status, "compiling view: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, defineViewResponse{Name: req.Name, Definition: definition})
}

type searchRequest struct {
	View        string   `json:"view"`
	Keywords    []string `json:"keywords"`
	TopK        int      `json:"top_k"`
	Disjunctive bool     `json:"disjunctive"`
	Approach    string   `json:"approach"`
	Cache       bool     `json:"cache"`
	// Offset skips that many leading ranked results before top_k applies
	// (pagination); rank numbers keep their absolute position, and pages
	// of one query share a single cache entry.
	Offset int `json:"offset"`
	// Parallelism bounds the search's worker pool: 0 = GOMAXPROCS (the
	// default), 1 = sequential. Results are identical at every setting.
	Parallelism int `json:"parallelism"`
}

type searchResult struct {
	Rank    int            `json:"rank"`
	Score   float64        `json:"score"`
	TF      map[string]int `json:"tf"`
	XML     string         `json:"xml"`
	Snippet string         `json:"snippet"`
}

type searchStats struct {
	PDTTimeMicros  int64 `json:"pdt_time_us"`
	EvalTimeMicros int64 `json:"eval_time_us"`
	PostTimeMicros int64 `json:"post_time_us"`
	TotalMicros    int64 `json:"total_us"`
	PDTNodes       int   `json:"pdt_nodes"`
	ViewSize       int   `json:"view_size"`
	Matched        int   `json:"matched"`
	BaseData       int   `json:"base_data"`
	CacheHit       bool  `json:"cache_hit"`
	Workers        int   `json:"workers"`
	Candidates     int   `json:"candidates"`
	ShardsSearched int   `json:"shards_searched"`
	// PlanSource reports how the answer was produced ("direct",
	// "cache_hit", "rewritten" or "materialized" — results are
	// byte-identical across all four); PlanView is the catalog ID of the
	// serving view. Both are empty on pipelines that never consult the
	// catalog.
	PlanSource string `json:"plan_source,omitempty"`
	PlanView   string `json:"plan_view,omitempty"`
	// Nodes is the per-member outcome of a distributed search (cluster
	// backend only; absent on single-process servers).
	Nodes []nodeStatus `json:"nodes,omitempty"`
}

// nodeStatus is one cluster member's outcome inside searchStats.
type nodeStatus struct {
	URL   string `json:"url"`
	Slot  int    `json:"slot"`
	State string `json:"state"`
	Gen   uint64 `json:"gen,omitempty"`
	Error string `json:"error,omitempty"`
}

type searchResponse struct {
	Results []searchResult `json:"results"`
	Stats   searchStats    `json:"stats"`
	// Error is set when the response is a degraded partial-cluster answer
	// (status 502): Results covers only the surviving partitions.
	Error string `json:"error,omitempty"`
}

// wireStats converts per-search stats to the wire shape (shared by the
// one-shot search response and any stats-bearing degraded response).
func wireStats(stats *vxml.Stats) searchStats {
	out := searchStats{
		PDTTimeMicros:  stats.PDTTime.Microseconds(),
		EvalTimeMicros: stats.EvalTime.Microseconds(),
		PostTimeMicros: stats.PostTime.Microseconds(),
		TotalMicros:    stats.Total.Microseconds(),
		PDTNodes:       stats.PDTNodes,
		ViewSize:       stats.ViewSize,
		Matched:        stats.Matched,
		BaseData:       stats.BaseData,
		CacheHit:       stats.CacheHit,
		Workers:        stats.Workers,
		Candidates:     stats.Candidates,
		ShardsSearched: stats.ShardsSearched,
		PlanSource:     stats.PlanSource,
		PlanView:       stats.PlanView,
	}
	for _, n := range stats.Nodes {
		out.Nodes = append(out.Nodes, nodeStatus{URL: n.URL, Slot: n.Slot, State: n.State, Gen: n.Gen, Error: n.Err})
	}
	return out
}

// parseApproach maps the wire name to the pipeline selector; an unknown
// name wraps vxml.ErrInvalidOptions (→ 400).
func parseApproach(name string) (vxml.Approach, error) {
	switch name {
	case "", "efficient":
		return vxml.Efficient, nil
	case "baseline":
		return vxml.Baseline, nil
	case "gtp":
		return vxml.GTPTermJoin, nil
	}
	return 0, fmt.Errorf("%w: unknown approach %q (want efficient, baseline or gtp)", vxml.ErrInvalidOptions, name)
}

// resolveSearch decodes and validates a search request body against the
// view registry, writing the error response itself when it returns ok =
// false. The wire-level range checks reject instead of normalizing — an
// HTTP client sending top_k: -1 is confused, and a 400 tells it so — while
// library callers get normalization; both land on the same canonical
// options.
func (s *Server) resolveSearch(w http.ResponseWriter, r *http.Request) (string, *vxml.Options, []string, bool) {
	var req searchRequest
	if !decodeBody(w, r, &req) {
		return "", nil, nil, false
	}
	if len(req.Keywords) == 0 {
		writeError(w, http.StatusBadRequest, "keywords are required")
		return "", nil, nil, false
	}
	if req.TopK < 0 {
		writeError(w, http.StatusBadRequest, "top_k must be >= 0 (0 returns all results), got %d", req.TopK)
		return "", nil, nil, false
	}
	if req.Offset < 0 {
		writeError(w, http.StatusBadRequest, "offset must be >= 0, got %d", req.Offset)
		return "", nil, nil, false
	}
	if req.Parallelism < 0 {
		writeError(w, http.StatusBadRequest, "parallelism must be >= 0 (0 uses all CPUs, 1 is sequential), got %d", req.Parallelism)
		return "", nil, nil, false
	}
	if !s.backend.HasView(req.View) {
		writeError(w, statusFor(vxml.ErrUnknownView), "unknown view %q", req.View)
		return "", nil, nil, false
	}
	approach, err := parseApproach(req.Approach)
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		return "", nil, nil, false
	}
	return req.View, &vxml.Options{
		TopK:        req.TopK,
		Offset:      req.Offset,
		Disjunctive: req.Disjunctive,
		Approach:    approach,
		Cache:       req.Cache,
		Parallelism: req.Parallelism,
	}, req.Keywords, true
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	view, opts, keywords, ok := s.resolveSearch(w, r)
	if !ok {
		return
	}
	results, stats, err := s.backend.Search(r.Context(), view, keywords, opts)
	if err != nil && !(errors.Is(err, vxml.ErrPartialCluster) && stats != nil) {
		writeError(w, statusFor(err), "search: %v", err)
		return
	}
	resp := searchResponse{
		Results: make([]searchResult, len(results)),
		Stats:   wireStats(stats),
	}
	for i, res := range results {
		resp.Results[i] = wireResult(res)
	}
	if err != nil {
		// Degraded mode: the surviving partitions' results travel with the
		// 502, and stats.nodes names the members that were lost — the
		// status is the truncation marker, never a silent one.
		resp.Error = err.Error()
		writeJSON(w, statusFor(err), resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// wireResult converts one search result to its wire shape (shared by the
// one-shot and streaming search responses, which must agree byte-for-byte
// per result).
func wireResult(res vxml.Result) searchResult {
	return searchResult{Rank: res.Rank, Score: res.Score, TF: res.TF, XML: res.XML, Snippet: res.Snippet}
}

// handleSearchStream is POST /v1/search/stream: the same request body as
// /v1/search, answered as NDJSON (application/x-ndjson) with one result
// object per line, written and flushed as the pipeline yields each ranked
// winner — the paper's deferred materialization extended over the wire. A
// failure before the first result is an ordinary JSON error response with
// the taxonomy status; a failure mid-stream (the headers are long gone) is
// delivered in-band as a final {"error": ...} line, so a client can
// distinguish a complete stream from a truncated one. A client disconnect
// cancels the request context and with it the pipeline.
func (s *Server) handleSearchStream(w http.ResponseWriter, r *http.Request) {
	view, opts, keywords, ok := s.resolveSearch(w, r)
	if !ok {
		return
	}
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	// The server's global WriteTimeout is one absolute deadline for the
	// whole response — fine for one-shot JSON, fatal for a long stream.
	// Roll the write deadline forward per line instead: a healthy stream
	// of any length survives, a stalled client still trips it. A
	// middleware-wrapped ResponseWriter may not support per-response
	// deadlines (http.ErrNotSupported): detect that on the first failure,
	// log it once per server, and fall back explicitly to the global
	// WriteTimeout instead of silently retrying every line.
	rc := http.NewResponseController(w)
	deadlineSupported := true
	extendDeadline := func() {
		if !deadlineSupported {
			return
		}
		if err := rc.SetWriteDeadline(time.Now().Add(s.streamGrace)); err != nil {
			deadlineSupported = false
			s.deadlineLogOnce.Do(func() {
				s.logf("search/stream: ResponseWriter does not support per-response write deadlines (%v); long streams fall back to the server's global WriteTimeout", err)
			})
		}
	}
	started := false
	start := func() {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		started = true
	}
	for res, err := range s.backend.Results(r.Context(), view, keywords, opts) {
		if err != nil {
			if !started {
				writeError(w, statusFor(err), "search: %v", err)
				return
			}
			extendDeadline()
			enc.Encode(errorBody{Error: err.Error()}) //nolint:errcheck
			// Flush the in-band error line too: behind a buffering proxy an
			// unflushed error can sit until connection teardown,
			// indistinguishable from a truncated stream.
			flush()
			return
		}
		if !started {
			start()
		}
		extendDeadline()
		if err := enc.Encode(wireResult(res)); err != nil {
			return // client went away; the ranged loop is not resumed
		}
		flush()
	}
	// An empty result set is still a successful, empty stream.
	if !started {
		start()
	}
}

// streamWriteGrace is how long one NDJSON line may take to reach the
// client before the stream's rolling write deadline kills the connection.
const streamWriteGrace = 60 * time.Second

// explainRequest is the body of POST /v1/explain: the same view/keywords
// pair a search takes, with none of the execution options — the plan does
// not depend on them.
type explainRequest struct {
	View     string   `json:"view"`
	Keywords []string `json:"keywords"`
}

// explainResponse echoes the request identity alongside the rendered plan,
// so a captured explanation is self-describing when attached to a load
// harness failure or stored next to other evidence. PlanSource and
// PlanView report which catalog tier would answer a cached search right
// now ("direct", "cache_hit", "rewritten" or "materialized", plus the
// serving view's catalog ID) — a point-in-time probe, not a promise: a
// mutation or eviction between explain and search can change the tier
// (never the results).
type explainResponse struct {
	View       string   `json:"view"`
	Keywords   []string `json:"keywords"`
	Plan       string   `json:"plan"`
	PlanSource string   `json:"plan_source,omitempty"`
	PlanView   string   `json:"plan_view,omitempty"`
}

// handleExplain is POST /v1/explain: render the query plan — the QPTs
// derived from the view definition and the exact index probes PDT
// generation would issue — for a view/keywords pair, without evaluating
// anything. This is the execution-trace hook load harnesses attach to
// flagged requests: any search or stream request body can be replayed here
// (extra fields like top_k are rejected, as everywhere) to capture why the
// engine planned it the way it did.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Keywords) == 0 {
		writeError(w, http.StatusBadRequest, "keywords are required")
		return
	}
	if !s.backend.HasView(req.View) {
		writeError(w, statusFor(vxml.ErrUnknownView), "unknown view %q", req.View)
		return
	}
	plan, err := s.backend.Explain(r.Context(), req.View, req.Keywords)
	if err != nil {
		writeError(w, statusFor(err), "explain: %v", err)
		return
	}
	// The probe can only fail if the view vanished between HasView and
	// here; the plan text is still worth returning, so a failed probe just
	// leaves the plan fields empty.
	source, viewID, _ := s.backend.PlanProbe(req.View, req.Keywords)
	writeJSON(w, http.StatusOK, explainResponse{
		View: req.View, Keywords: req.Keywords, Plan: plan,
		PlanSource: source, PlanView: viewID,
	})
}

type statsResponse struct {
	Documents  []string    `json:"documents"`
	TotalBytes int         `json:"total_bytes"`
	Views      int         `json:"views"`
	Shards     []shardInfo `json:"shards"`
	Cache      cacheStats  `json:"cache"`
	// Catalog carries the view-catalog planner counters: registered views,
	// resident artifacts and the per-tier serving statistics.
	Catalog catalogStats `json:"catalog"`
	// Disk carries the disk backend's counters (on-disk/resident bytes, DAG
	// dedup, block/doc/index cache hit rates); absent on a heap-resident
	// corpus.
	Disk   *diskstore.Stats `json:"disk,omitempty"`
	Uptime string           `json:"uptime"`
}

// shardInfo is one corpus shard's counters in GET /stats. Mutations counts
// the replace/delete operations applied to the shard — corpus churn that
// document count and bytes alone cannot show.
type shardInfo struct {
	Shard     int `json:"shard"`
	Documents int `json:"documents"`
	Bytes     int `json:"bytes"`
	Mutations int `json:"mutations"`
}

type cacheStats struct {
	Hits          int `json:"hits"`
	Misses        int `json:"misses"`
	Evictions     int `json:"evictions"`
	Invalidations int `json:"invalidations"`
	Entries       int `json:"entries"`
	Capacity      int `json:"capacity"`
	Bytes         int `json:"bytes"`
	MaxBytes      int `json:"max_bytes"`
	Generation    int `json:"generation"`
}

// catalogStats is the view-catalog block of GET /v1/stats: registry size,
// resident planner artifacts (skeletons, materialized views, their byte
// footprint against the budget) and how often each planner tier served.
type catalogStats struct {
	Views            int `json:"views"`
	Skeletons        int `json:"skeletons"`
	Materialized     int `json:"materialized"`
	RewriteHits      int `json:"rewrite_hits"`
	MaterializedHits int `json:"materialized_hits"`
	Promotions       int `json:"promotions"`
	Demotions        int `json:"demotions"`
	ArtifactBytes    int `json:"artifact_bytes"`
	ArtifactMaxBytes int `json:"artifact_max_bytes"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.backend.CacheStats()
	resp := statsResponse{
		Documents:  s.backend.DocumentNames(),
		TotalBytes: s.backend.TotalBytes(),
		Views:      s.backend.ViewCount(),
		Shards:     s.backend.Shards(),
		Cache: cacheStats{
			Hits:          cs.Hits,
			Misses:        cs.Misses,
			Evictions:     cs.Evictions,
			Invalidations: cs.Invalidations,
			Entries:       cs.Entries,
			Capacity:      cs.Capacity,
			Bytes:         cs.Bytes,
			MaxBytes:      cs.MaxBytes,
			Generation:    cs.Generation,
		},
		Catalog: catalogStats{
			Views:            cs.Views,
			Skeletons:        cs.Skeletons,
			Materialized:     cs.Materialized,
			RewriteHits:      cs.RewriteHits,
			MaterializedHits: cs.MaterializedHits,
			Promotions:       cs.Promotions,
			Demotions:        cs.Demotions,
			ArtifactBytes:    cs.ArtifactBytes,
			ArtifactMaxBytes: cs.ArtifactMaxBytes,
		},
	}
	if ds, ok := s.backend.DiskStats(); ok {
		resp.Disk = &ds
	}
	resp.Uptime = time.Since(s.started).Round(time.Millisecond).String()
	writeJSON(w, http.StatusOK, resp)
}
