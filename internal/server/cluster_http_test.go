// The /v1 surface over a cluster backend: the taxonomy rows only a
// distributed deployment produces, and the degraded-mode contract — a dead
// slot turns into a 502 whose body still carries the surviving partitions'
// results plus per-node status, never a silently truncated 200.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"vxml"
	"vxml/internal/cluster"
)

// TestStatusForClusterTaxonomy pins the rows the cluster backend adds to
// the error → status table.
func TestStatusForClusterTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("wrap: %w", vxml.ErrPartialCluster), http.StatusBadGateway},
		{fmt.Errorf("wrap: %w", cluster.ErrNodeUnavailable), http.StatusBadGateway},
		{fmt.Errorf("wrap: %w", cluster.ErrStaleGeneration), http.StatusServiceUnavailable},
		{fmt.Errorf("wrap: %w", cluster.ErrUnroutableView), http.StatusBadRequest},
		{fmt.Errorf("wrap: %w", vxml.ErrDuplicateView), http.StatusConflict},
	}
	for _, tc := range cases {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("statusFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

const clusterPartDoc = `<books><article><fm><tl>copper mining</tl><au>author%d</au><yr>1999</yr></fm><bdy>copper quartz survey</bdy></article></books>`

// TestClusterBackedServer serves the public API through a two-slot
// cluster and checks the full degraded-mode round trip over HTTP.
func TestClusterBackedServer(t *testing.T) {
	var nodeServers []*httptest.Server
	var slots [][]string
	for i := 0; i < 2; i++ {
		ns := httptest.NewServer(cluster.NewNode().Handler())
		defer ns.Close()
		nodeServers = append(nodeServers, ns)
		slots = append(slots, []string{ns.URL})
	}
	coord, err := cluster.NewCoordinator(cluster.Config{Slots: slots, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewCluster(coord).Handler())
	defer ts.Close()

	// Enough partitioned documents that both slots own at least one.
	perSlot := map[int]int{}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("part-%02d.xml", i)
		resp, body := postJSON(t, ts.URL+"/v1/documents", map[string]any{
			"name": name, "xml": fmt.Sprintf(clusterPartDoc, i),
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("add %s: %d %s", name, resp.StatusCode, body)
		}
	}
	for _, st := range coord.Slots() {
		perSlot[st.Slot] = st.Documents
	}
	if perSlot[0] == 0 || perSlot[1] == 0 {
		t.Fatalf("document names did not spread over both slots: %v", perSlot)
	}

	viewReq := map[string]any{
		"name":   "arts",
		"xquery": `for $a in fn:collection("part-*")/books//article return <r>{$a/fm/tl}, {$a/bdy}</r>`,
	}
	if resp, body := postJSON(t, ts.URL+"/v1/views", viewReq); resp.StatusCode != http.StatusCreated {
		t.Fatalf("define view: %d %s", resp.StatusCode, body)
	}
	// Re-registering the same name over HTTP is a conflict, same as the
	// single-process server.
	if resp, _ := postJSON(t, ts.URL+"/v1/views", viewReq); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate view: status %d, want 409", resp.StatusCode)
	}

	searchReq := map[string]any{"view": "arts", "keywords": []string{"copper"}}
	resp, body := postJSON(t, ts.URL+"/v1/search", searchReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy search: %d %s", resp.StatusCode, body)
	}
	var healthy struct {
		Results []json.RawMessage `json:"results"`
		Stats   struct {
			Nodes []nodeStatus `json:"nodes"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(body, &healthy); err != nil {
		t.Fatal(err)
	}
	if len(healthy.Results) != 6 {
		t.Fatalf("healthy search returned %d results, want 6", len(healthy.Results))
	}
	for _, ns := range healthy.Stats.Nodes {
		if ns.State != "ok" {
			t.Fatalf("healthy search reports node %+v", ns)
		}
	}

	// Kill slot 1 and search again: a 502 whose body still carries slot 0's
	// results, an error naming the condition, and per-node status naming the
	// lost member.
	nodeServers[1].Close()
	resp, body = postJSON(t, ts.URL+"/v1/search", searchReq)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("degraded search: status %d, want 502 (body %s)", resp.StatusCode, body)
	}
	var degraded struct {
		Results []json.RawMessage `json:"results"`
		Error   string            `json:"error"`
		Stats   struct {
			Nodes []nodeStatus `json:"nodes"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(body, &degraded); err != nil {
		t.Fatal(err)
	}
	if len(degraded.Results) != perSlot[0] {
		t.Fatalf("degraded body carries %d results, want slot 0's %d", len(degraded.Results), perSlot[0])
	}
	if degraded.Error == "" {
		t.Fatal("degraded body has no error field")
	}
	var failed int
	for _, ns := range degraded.Stats.Nodes {
		if ns.Slot == 1 && ns.State == "failed" {
			failed++
			if ns.Error == "" {
				t.Fatal("failed node status has no error text")
			}
		}
	}
	if failed != 1 {
		t.Fatalf("degraded stats.nodes does not name the lost member: %+v", degraded.Stats.Nodes)
	}

	// The backend error behind that 502 is the typed sentinel.
	_, _, err = coord.Search(t.Context(), "arts", []string{"copper"}, nil)
	if !errors.Is(err, vxml.ErrPartialCluster) {
		t.Fatalf("coordinator error = %v, want ErrPartialCluster", err)
	}

	// Mutations that route to the dead primary fail loudly too. Placement
	// hashes the name, so probe fresh names until one lands on slot 1 (a
	// handful of tries finds one with near-certainty).
	var sawDeadAdd bool
	for i := 6; i < 30 && !sawDeadAdd; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/documents", map[string]any{
			"name": fmt.Sprintf("part-%02d.xml", i), "xml": fmt.Sprintf(clusterPartDoc, i),
		})
		switch resp.StatusCode {
		case http.StatusCreated: // landed on the live slot
		case http.StatusBadGateway: // ErrNodeUnavailable from the dead primary
			sawDeadAdd = true
		default:
			t.Fatalf("add with a dead slot answered %d, want 201 (live slot) or 502 (dead slot)", resp.StatusCode)
		}
	}
	if !sawDeadAdd {
		t.Fatal("no probe add routed to the dead slot, or its failure was silent")
	}
}
