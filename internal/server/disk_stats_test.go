// GET /v1/stats over a disk-backed database grows a "disk" object with
// on-disk/resident bytes and cache counters; a heap-backed server omits
// the key entirely.
package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"vxml"
)

func TestStatsDiskObject(t *testing.T) {
	db, err := vxml.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.MustAdd("books.xml", booksXML)
	db.MustAdd("reviews.xml", reviewsXML)

	ts := httptest.NewServer(New(db).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		TotalBytes int             `json:"total_bytes"`
		Disk       json.RawMessage `json:"disk"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Disk == nil {
		t.Fatal("disk-backed server reports no disk stats")
	}
	var disk struct {
		Documents   int   `json:"documents"`
		DataBytes   int64 `json:"data_bytes"`
		TotalBytes  int   `json:"total_bytes"`
		NodesShared int64 `json:"nodes_shared"`
		BlockCache  struct {
			Capacity int64 `json:"capacity"`
		} `json:"block_cache"`
	}
	if err := json.Unmarshal(stats.Disk, &disk); err != nil {
		t.Fatal(err)
	}
	if disk.Documents != 2 || disk.DataBytes <= 0 || disk.BlockCache.Capacity <= 0 {
		t.Fatalf("implausible disk stats: %s", stats.Disk)
	}
	if disk.TotalBytes != stats.TotalBytes {
		t.Fatalf("disk stats total %d != corpus total %d", disk.TotalBytes, stats.TotalBytes)
	}

	// Heap-backed server: the key must be absent, not a zero object.
	heapTS, _ := newTestServer(t)
	resp2, err := http.Get(heapTS.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, present := raw["disk"]; present {
		t.Fatal("heap-backed server leaks a disk stats object")
	}
}
