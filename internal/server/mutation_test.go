package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vxml"
)

// newHTTPTestServer wraps an already-configured Server (e.g. read-only) in
// an httptest listener.
func newHTTPTestServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// doJSON issues a request with a JSON (or empty) body and returns the
// response plus its body (PUT/DELETE have no http package helper).
func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var reader *bytes.Reader
	if body == nil {
		reader = bytes.NewReader(nil)
	} else {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reader = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// searchXML runs a search over HTTP and returns the concatenated result
// XML, for content assertions.
func searchXML(t *testing.T, base, view string, keywords []string) (string, int) {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/search", map[string]any{"view": view, "keywords": keywords})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d %s", resp.StatusCode, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	var all strings.Builder
	for _, r := range sr.Results {
		all.WriteString(r.XML)
	}
	return all.String(), len(sr.Results)
}

func TestReplaceAndDeleteRoutes(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestCorpus(t, ts.URL)

	before, n := searchXML(t, ts.URL, "bookrevs", []string{"xml"})
	if n == 0 || !strings.Contains(before, "XML Web Services") {
		t.Fatalf("pre-mutation search: %d results, %s", n, before)
	}

	// Replace reviews.xml: the xml keyword now hits different content.
	newReviews := `<reviews>
	  <review><isbn>111</isbn><content>revised xml appraisal</content></review>
	</reviews>`
	resp, body := doJSON(t, http.MethodPut, ts.URL+"/v1/documents/reviews.xml", map[string]string{"xml": newReviews})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT: %d %s", resp.StatusCode, body)
	}
	var put addDocumentResponse
	if err := json.Unmarshal(body, &put); err != nil {
		t.Fatal(err)
	}
	if put.Name != "reviews.xml" || len(put.Documents) != 2 {
		t.Errorf("PUT response: %+v", put)
	}
	after, _ := searchXML(t, ts.URL, "bookrevs", []string{"xml"})
	if !strings.Contains(after, "revised xml appraisal") || strings.Contains(after, "great xml coverage") {
		t.Errorf("replacement not visible to search: %s", after)
	}

	// Delete reviews.xml: the view still works, reviews just vanish.
	resp, body = doJSON(t, http.MethodDelete, ts.URL+"/v1/documents/reviews.xml", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d %s", resp.StatusCode, body)
	}
	gone, _ := searchXML(t, ts.URL, "bookrevs", []string{"xml"})
	if strings.Contains(gone, "revised xml appraisal") {
		t.Errorf("deleted document still searchable: %s", gone)
	}

	// The unversioned aliases answer the same way.
	resp, _ = doJSON(t, http.MethodPut, ts.URL+"/documents/books.xml", map[string]string{"xml": booksXML})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("unversioned PUT: %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/documents/books.xml", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("unversioned DELETE: %d", resp.StatusCode)
	}
}

func TestMutationRouteTaxonomy(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestCorpus(t, ts.URL)

	// 404: unknown name, both verbs.
	resp, _ := doJSON(t, http.MethodPut, ts.URL+"/v1/documents/absent.xml", map[string]string{"xml": "<a/>"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("PUT unknown: %d, want 404", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/documents/absent.xml", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown: %d, want 404", resp.StatusCode)
	}
	// 400: malformed replacement XML, missing xml field.
	resp, _ = doJSON(t, http.MethodPut, ts.URL+"/v1/documents/books.xml", map[string]string{"xml": "<unclosed"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT bad xml: %d, want 400", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodPut, ts.URL+"/v1/documents/books.xml", map[string]string{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT empty body: %d, want 400", resp.StatusCode)
	}
	// 409 on the POST duplicate path is unchanged.
	resp, _ = postJSON(t, ts.URL+"/v1/documents", map[string]string{"name": "books.xml", "xml": booksXML})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("POST duplicate: %d, want 409", resp.StatusCode)
	}
}

func TestReadOnlyServer(t *testing.T) {
	db := vxml.Open()
	db.MustAdd("books.xml", booksXML)
	srv := New(db)
	srv.SetReadOnly(true)
	ts := newHTTPTestServer(t, srv)

	resp, _ := postJSON(t, ts.URL+"/v1/documents", map[string]string{"name": "x.xml", "xml": "<a/>"})
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("readonly POST: %d, want 403", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodPut, ts.URL+"/v1/documents/books.xml", map[string]string{"xml": booksXML})
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("readonly PUT: %d, want 403", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/documents/books.xml", nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("readonly DELETE: %d, want 403", resp.StatusCode)
	}
	// Reads — and view definition — still work.
	resp, _ = postJSON(t, ts.URL+"/v1/views", map[string]string{"name": "b", "xquery": `for $b in fn:doc(books.xml)/books//book return $b`})
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("readonly view define: %d, want 201", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/search", map[string]any{"view": "b", "keywords": []string{"xml"}})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readonly search: %d, want 200", resp.StatusCode)
	}
}

func TestStatsReportMutations(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestCorpus(t, ts.URL)
	if _, body := doJSON(t, http.MethodPut, ts.URL+"/v1/documents/books.xml", map[string]string{"xml": booksXML}); len(body) == 0 {
		t.Fatal("empty PUT response")
	}
	if resp, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/documents/reviews.xml", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE failed: %d", resp.StatusCode)
	}
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var stats statsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sh := range stats.Shards {
		total += sh.Mutations
	}
	if total != 2 {
		t.Errorf("stats mutations sum = %d, want 2 (shards: %+v)", total, stats.Shards)
	}
	if len(stats.Documents) != 1 || stats.Documents[0] != "books.xml" {
		t.Errorf("stats documents = %v", stats.Documents)
	}
}
