package vxml_test

// Property-style equivalence tests for the catalog query planner: every
// planner tier — exact cache hit, TopK-window rewrite, skeleton rewrite
// with different keywords, adaptively materialized view — must return
// byte-identical results (rank, score, TF map, materialized XML, snippet)
// to direct evaluation of the same search, across randomized corpora,
// view shapes, keyword sets, both parallelism settings and interleaved
// Replace/Delete mutations (which must invalidate every artifact). Run
// with -race: the concurrent trial races planned searches against
// mutations and promotions.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"vxml"
	"vxml/internal/testkit"
)

// plannedVsDirect runs the same search twice — once with the planner
// (Cache: true) and once directly — asserts byte identity, and returns
// the planned search's plan source.
func plannedVsDirect(t *testing.T, label string, db *vxml.Database, view *vxml.View, kws []string, opts vxml.Options) string {
	t.Helper()
	direct := opts
	direct.Cache = false
	want, _, err := db.Search(view, kws, &direct)
	if err != nil {
		t.Fatalf("%s: direct: %v", label, err)
	}
	planned := opts
	planned.Cache = true
	got, stats, err := db.Search(view, kws, &planned)
	if err != nil {
		t.Fatalf("%s: planned: %v", label, err)
	}
	testkit.MustEqualResults(t, label, want, got)
	if stats.PlanSource == "" {
		t.Fatalf("%s: planned search reported no plan source", label)
	}
	return stats.PlanSource
}

// TestPlannerEquivalenceRandomized drives 48 randomized corpora through a
// search sequence designed to hit every planner tier in turn — first
// search direct (records the skeleton), different-keyword searches off the
// skeleton, a TopK window off the cached full entry, an exact repeat, then
// enough heat to cross the promotion threshold and serve from the
// materialized view — asserting byte identity with direct evaluation at
// every step, then interleaves Replace and Delete and re-asserts (stale
// artifacts must never serve). Trials alternate sequential and parallel
// pipelines and run concurrently with each other.
func TestPlannerEquivalenceRandomized(t *testing.T) {
	var mu sync.Mutex
	observed := map[string]int{}
	note := func(source string) {
		mu.Lock()
		observed[source]++
		mu.Unlock()
	}

	for trial := 0; trial < 48; trial++ {
		t.Run(fmt.Sprintf("trial=%02d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(0x9107 + int64(trial)*7919))
			db := testkit.BuildEqCorpus(t, rng, 3+rng.Intn(4))
			// Promote after two planned searches so the materialized tier is
			// reached within each trial's short search sequence.
			db.SetPlanPolicy(2, 0)
			view, err := db.DefineView(testkit.EqViews[trial%len(testkit.EqViews)])
			if err != nil {
				t.Fatal(err)
			}
			par := trial % 2 // 1 = sequential, 0 = full worker pool
			base := vxml.Options{Parallelism: par, Disjunctive: trial%3 == 0}

			kwsA := testkit.KeywordsFor(rng)
			note(plannedVsDirect(t, "cold", db, view, kwsA, base))

			// Different keyword sets over the same view: the skeleton is
			// keyword-independent, so these rewrite rather than re-evaluate.
			note(plannedVsDirect(t, "other-keywords", db, view, []string{"basalt", "copper"}, base))
			disj := base
			disj.Disjunctive = !base.Disjunctive
			note(plannedVsDirect(t, "other-semantics", db, view, kwsA, disj))

			// A TopK window of the already-cached full ranking, then the
			// exact same search again (cache hit).
			topk := base
			topk.TopK = 1 + rng.Intn(3)
			note(plannedVsDirect(t, "window", db, view, kwsA, topk))
			note(plannedVsDirect(t, "exact-repeat", db, view, kwsA, base))

			// The view has been served several times over the threshold by
			// now; the promoted materialized view must answer new keyword
			// sets byte-identically.
			note(plannedVsDirect(t, "hot", db, view, []string{"quartz", "survey"}, base))
			note(plannedVsDirect(t, "hot-window", db, view, []string{"quartz"}, topk))

			// Mutations invalidate every artifact: each planned search after
			// one must match a fresh direct evaluation, never a stale tier.
			if err := db.Replace("part-00.xml", testkit.RandomPartDoc(rng, 77)); err != nil {
				t.Fatal(err)
			}
			note(plannedVsDirect(t, "after-replace", db, view, kwsA, base))
			note(plannedVsDirect(t, "after-replace-rewrite", db, view, []string{"copper"}, base))
			if err := db.Delete("part-01.xml"); err != nil {
				t.Fatal(err)
			}
			note(plannedVsDirect(t, "after-delete", db, view, kwsA, base))
			note(plannedVsDirect(t, "after-delete-window", db, view, kwsA, topk))
		})
	}

	t.Cleanup(func() {
		// Every tier must actually have served somewhere across the 48
		// trials, or the suite is vacuously passing against a planner that
		// never engages.
		for _, want := range []string{"direct", "cache_hit", "rewritten", "materialized"} {
			if observed[want] == 0 {
				t.Errorf("plan source %q never observed across trials (got %v)", want, observed)
			}
		}
	})
}

// TestPlannerPromotionLifecycle pins the adaptive-materialization policy
// end to end on one database: skeleton after the first planned search,
// materialized after the threshold, demotion on mutation, and a doubled
// re-promotion bar afterwards (churn) — all visible through CacheStats.
func TestPlannerPromotionLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	db := testkit.BuildEqCorpus(t, rng, 4)
	db.SetPlanPolicy(2, 0)
	view, err := db.DefineView(testkit.EqViews[0])
	if err != nil {
		t.Fatal(err)
	}
	opts := vxml.Options{}

	if src := plannedVsDirect(t, "first", db, view, []string{"copper"}, opts); src != "direct" {
		t.Fatalf("first planned search served from %q, want direct", src)
	}
	if cs := db.CacheStats(); cs.Skeletons != 1 {
		t.Fatalf("after first planned search: %d skeletons, want 1", cs.Skeletons)
	}
	// Hit 2 crosses the threshold (promoteHits=2) and promotes inline.
	if src := plannedVsDirect(t, "second", db, view, []string{"quartz"}, opts); src != "rewritten" {
		t.Fatalf("second planned search served from %q, want rewritten", src)
	}
	cs := db.CacheStats()
	if cs.Materialized != 1 || cs.Promotions != 1 {
		t.Fatalf("after threshold: materialized=%d promotions=%d, want 1/1", cs.Materialized, cs.Promotions)
	}
	if src := plannedVsDirect(t, "third", db, view, []string{"survey", "copper"}, opts); src != "materialized" {
		t.Fatalf("post-promotion search served from %q, want materialized", src)
	}

	// A mutation demotes: the artifact is dropped, the demotion counted,
	// and the doubled threshold (churn) delays re-promotion to hit 4.
	if err := db.Replace("part-00.xml", testkit.RandomPartDoc(rng, 9)); err != nil {
		t.Fatal(err)
	}
	cs = db.CacheStats()
	if cs.Materialized != 0 || cs.Demotions != 1 {
		t.Fatalf("after mutation: materialized=%d demotions=%d, want 0/1", cs.Materialized, cs.Demotions)
	}
	sources := []string{}
	// Distinct keyword sets so each search reaches the engine (an exact
	// repeat would serve from the result cache without counting heat).
	for i, kw := range []string{"copper", "quartz", "survey", "basalt"} {
		sources = append(sources, plannedVsDirect(t, fmt.Sprintf("churned-%d", i), db, view, []string{kw}, vxml.Options{}))
	}
	if want := []string{"direct", "rewritten", "rewritten", "rewritten"}; fmt.Sprint(sources) != fmt.Sprint(want) {
		t.Fatalf("churned sequence served from %v, want %v", sources, want)
	}
	if cs = db.CacheStats(); cs.Promotions != 2 {
		t.Fatalf("after churned re-heat: promotions=%d, want 2 (threshold doubled to 4 hits)", cs.Promotions)
	}
	if src := plannedVsDirect(t, "re-promoted", db, view, []string{"quartz", "survey"}, opts); src != "materialized" {
		t.Fatalf("re-promoted search served from %q, want materialized", src)
	}
}

// TestPlannerConcurrentMutationRace hammers planned searches from many
// goroutines while a mutator replaces and deletes documents, exercising
// the generation-stamp discipline under real contention (run with -race).
// Searches may be served by any tier but must never fail; after the dust
// settles a final planned search must match direct evaluation exactly, and
// no goroutine may leak.
func TestPlannerConcurrentMutationRace(t *testing.T) {
	baselineGoroutines := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(4242))
	db := testkit.BuildEqCorpus(t, rng, 5)
	db.SetPlanPolicy(2, 0)
	views := make([]*vxml.View, 2)
	for i, text := range []string{testkit.EqViews[0], testkit.EqViews[1]} {
		v, err := db.DefineView(text)
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
	}

	const searchers = 6
	var wg sync.WaitGroup
	errs := make(chan error, searchers*20+20)
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(int64(g) * 997))
			for i := 0; i < 20; i++ {
				opts := vxml.Options{
					Cache:       true,
					TopK:        []int{0, 3}[grng.Intn(2)],
					Disjunctive: grng.Intn(2) == 1,
					Parallelism: grng.Intn(2),
				}
				if _, _, err := db.Search(views[g%2], testkit.KeywordsFor(grng), &opts); err != nil {
					errs <- fmt.Errorf("searcher %d iter %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		mrng := rand.New(rand.NewSource(31337))
		for i := 0; i < 15; i++ {
			name := fmt.Sprintf("part-0%d.xml", mrng.Intn(5))
			if mrng.Intn(3) == 0 {
				if err := db.Delete(name); err != nil {
					continue // already deleted this round: fine
				}
				if err := db.Add(name, testkit.RandomPartDoc(mrng, 60+i)); err != nil {
					errs <- fmt.Errorf("mutator re-add %s: %w", name, err)
					return
				}
				continue
			}
			if err := db.Replace(name, testkit.RandomPartDoc(mrng, 30+i)); err != nil {
				errs <- fmt.Errorf("mutator replace %s: %w", name, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	for i, view := range views {
		plannedVsDirect(t, fmt.Sprintf("quiesced view %d", i), db, view, []string{"copper", "quartz"}, vxml.Options{})
		plannedVsDirect(t, fmt.Sprintf("quiesced view %d topk", i), db, view, []string{"survey"}, vxml.Options{TopK: 2})
	}
	testkit.WaitGoroutines(t, "after planner mutation race", baselineGoroutines)
}
