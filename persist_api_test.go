// Database-level persistence: Save/Load must round-trip a corpus —
// including one mutated by Replace/Delete — through the public API with
// identical search behavior, which exercises the engine's index rebuild
// after Load (the store-level tests cover only the store).
package vxml_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"vxml"
	"vxml/internal/testkit"
)

func TestDatabaseSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	db := vxml.OpenShards(3)
	var authorsXML string
	{
		authorsXML = `<authors><author><name>author0</name><affil>inst copper 0</affil></author>` +
			`<author><name>author1</name><affil>inst quartz 1</affil></author></authors>`
		db.MustAdd("authors.xml", authorsXML)
	}
	for i := 0; i < 6; i++ {
		db.MustAdd(fmt.Sprintf("part-%02d.xml", i), testkit.RandomPartDoc(rng, i))
	}
	// Mutate so the saved corpus has a gapped, reordered ID sequence.
	if err := db.Replace("part-02.xml", testkit.RandomPartDoc(rng, 77)); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("part-04.xml"); err != nil {
		t.Fatal(err)
	}

	type searched struct {
		setting testkit.SearchSetting
		results []vxml.Result
	}
	searchAll := func(t *testing.T, d *vxml.Database, viewText string, kws []string) []searched {
		t.Helper()
		v, err := d.DefineView(viewText)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]searched, 0, len(testkit.MutSettings))
		for _, s := range testkit.MutSettings {
			opts := &vxml.Options{TopK: 8, Approach: s.Approach, Parallelism: s.Parallel, Cache: s.Cache}
			results, _, err := d.Search(v, kws, opts)
			if err != nil {
				t.Fatalf("%s: %v", s.Label, err)
			}
			out = append(out, searched{s, results})
		}
		return out
	}

	kws := []string{"copper", "quartz"}
	before := map[string][]searched{}
	for _, viewText := range testkit.MutViews {
		before[viewText] = searchAll(t, db, viewText, kws)
	}

	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := vxml.Load(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Corpus identity: names in the same enumeration order, same shard
	// assignment (document count per shard), same total size.
	wantNames, gotNames := db.DocumentNames(), loaded.DocumentNames()
	if len(wantNames) != len(gotNames) {
		t.Fatalf("loaded %d documents, want %d", len(gotNames), len(wantNames))
	}
	for i := range wantNames {
		if wantNames[i] != gotNames[i] {
			t.Fatalf("enumeration order diverged at %d: %q vs %q", i, gotNames[i], wantNames[i])
		}
	}
	if got, want := loaded.TotalBytes(), db.TotalBytes(); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
	wantShards, gotShards := db.ShardStats(), loaded.ShardStats()
	if len(wantShards) != len(gotShards) {
		t.Fatalf("shard count %d, want %d", len(gotShards), len(wantShards))
	}
	for i := range wantShards {
		if gotShards[i].Documents != wantShards[i].Documents || gotShards[i].Bytes != wantShards[i].Bytes {
			t.Errorf("shard %d: %+v, want %+v", i, gotShards[i], wantShards[i])
		}
	}

	// Search identity: every view, every pipeline, every cache/parallelism
	// setting returns byte-identical results over the loaded database —
	// the engine rebuilt both indices for every document.
	for _, viewText := range testkit.MutViews {
		after := searchAll(t, loaded, viewText, kws)
		for i, b := range before[viewText] {
			testkit.MustEqualResultsOpt(t, "after load/"+b.setting.Label, after[i].results, b.results, b.setting.Snippets)
		}
	}

	// The loaded database keeps evolving: a post-load ingest lands in the
	// collection and is searchable.
	loaded.MustAdd("part-99.xml", `<books><article><fm><tl>fresh copper quartz</tl><au>author0</au><yr>1999</yr></fm><bdy>copper quartz</bdy></article></books>`)
	v, err := loaded.DefineView(testkit.MutViews[0])
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := loaded.Search(v, kws, &vxml.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range results {
		if strings.Contains(r.XML, "fresh copper quartz") {
			found = true
		}
	}
	if !found {
		t.Errorf("post-load ingest not searchable; results: %d", len(results))
	}
}
