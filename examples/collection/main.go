// Collection views over a sharded corpus: many part documents, one view.
//
// 40 "part-NN.xml" documents are ingested (hash-assigned to corpus
// shards), a single view over fn:collection("part-*") spans all of them,
// and the same ranked keyword search runs once sequentially and once over
// the worker pool — returning byte-identical results, as the library
// guarantees at every Parallelism setting.
//
// Run with: go run ./examples/collection
package main

import (
	"fmt"
	"log"

	"vxml"
)

func main() {
	db := vxml.Open()
	for d := 0; d < 40; d++ {
		topic := []string{"indexing", "ranking", "compression", "storage"}[d%4]
		xml := fmt.Sprintf(`<notes>
  <note><title>entry %d on %s</title>
        <body>thoughts about xml %s and keyword search, part %d</body></note>
  <note><title>addendum %d</title>
        <body>more on %s systems</body></note>
</notes>`, d, topic, topic, d, d, topic)
		db.MustAdd(fmt.Sprintf("part-%02d.xml", d), xml)
	}

	view, err := db.DefineView(`
	  for $n in fn:collection("part-*")/notes//note
	  return <hit>{$n/title}, {$n/body}</hit>`)
	if err != nil {
		log.Fatal(err)
	}

	keywords := []string{"xml", "ranking"}
	sequential, seqStats, err := db.Search(view, keywords, &vxml.Options{TopK: 3, Parallelism: 1})
	if err != nil {
		log.Fatal(err)
	}
	pooled, parStats, err := db.Search(view, keywords, &vxml.Options{TopK: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("corpus: %d documents across %d shards\n",
		len(db.DocumentNames()), len(db.ShardStats()))
	fmt.Printf("sequential: %d candidates, %d workers; pooled: %d workers\n",
		seqStats.Candidates, seqStats.Workers, parStats.Workers)
	for i, r := range pooled {
		if sequential[i].XML != r.XML {
			log.Fatalf("result %d diverged between parallelism settings", i)
		}
		fmt.Printf("#%d score=%.3f %s\n", r.Rank, r.Score, r.Snippet)
	}
}
