// Information integration (paper §1, "Information Integration"): an
// aggregator combines two query-able XML "web services" — a book catalog
// and a review service — into a single virtual portal view, joining on
// isbn and nesting reviews under books. The view stays virtual because the
// aggregator neither owns the sources nor wants stale copies; ranked
// keyword search still works over it, with scores identical to a
// materialized copy.
//
// Run with: go run ./examples/integration
package main

import (
	"fmt"
	"log"

	"vxml"
	"vxml/internal/inex"
)

func main() {
	// Simulate the two upstream services with the generated running
	// example corpus (200 books, ~400 reviews, seeded).
	booksXML, reviewsXML := inex.GenerateBooksReviews(200, 2024)

	db := vxml.Open()
	db.MustAdd("catalog.xml", booksXML)
	db.MustAdd("reviewsvc.xml", reviewsXML)

	// The aggregation view, including a third data shape: a computed
	// "pick" section for highly rated books (rate > 3), showing
	// conditionals inside integration views.
	v, err := db.DefineView(`
declare function revsOf($isbn) {
  for $r in fn:doc(reviewsvc.xml)/reviews//review
  where $r/isbn = $isbn
  return <review>{$r/rate}{$r/content}</review>
}
for $b in fn:doc(catalog.xml)/books//book
where $b/year > 1995
return <entry>
  {$b/title}
  {$b/publisher}
  {revsOf($b/isbn)}
</entry>`)
	if err != nil {
		log.Fatalf("view: %v", err)
	}

	keywords := []string{"data", "system"}
	fmt.Printf("aggregated portal search %v (conjunctive, top 3):\n\n", keywords)
	results, stats, err := db.Search(v, keywords, &vxml.Options{TopK: 3})
	if err != nil {
		log.Fatalf("search: %v", err)
	}
	for _, r := range results {
		fmt.Printf("rank %d  score %.4f  tf %v\n%.160s...\n\n", r.Rank, r.Score, r.TF, r.XML)
	}
	fmt.Printf("%d of %d integrated entries matched; the view was never materialized\n",
		stats.Matched, stats.ViewSize)
	fmt.Printf("PDT: %v (%d pruned nodes); evaluation: %v; scoring+materialization: %v\n",
		stats.PDTTime, stats.PDTNodes, stats.EvalTime, stats.PostTime)

	// Cross-check against full materialization: identical ranking.
	baseResults, _, err := db.Search(v, keywords, &vxml.Options{TopK: 3, Approach: vxml.Baseline})
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}
	same := len(baseResults) == len(results)
	for i := range results {
		if !same || baseResults[i].XML != results[i].XML {
			same = false
			break
		}
	}
	fmt.Printf("ranking identical to materialize-then-search: %v (Theorem 4.1)\n", same)
}
