// Personalized portals (paper §1, "Personalized Views"): a portal defines
// one virtual view per user — same base data, different interests and
// permission levels — and lets each user search only their own view.
// Materializing a view per user would duplicate overlapping content; the
// virtual-view pipeline shares the base data and its indices across all
// users.
//
// Run with: go run ./examples/personalized
package main

import (
	"fmt"
	"log"

	"vxml"
)

const articlesXML = `<articles>
  <article><topic>databases</topic><level>public</level>
    <headline>XML query engines compared</headline>
    <body>a survey of xml search and indexing systems</body></article>
  <article><topic>databases</topic><level>internal</level>
    <headline>Quarterly storage roadmap</headline>
    <body>internal plans for the storage and search stack</body></article>
  <article><topic>ai</topic><level>public</level>
    <headline>Neural ranking for search</headline>
    <body>learning to rank with neural networks</body></article>
  <article><topic>ai</topic><level>internal</level>
    <headline>Model training incidents</headline>
    <body>postmortem of the ranking model rollout</body></article>
  <article><topic>sports</topic><level>public</level>
    <headline>Cup final recap</headline>
    <body>an eventful final with a late winner</body></article>
</articles>`

const profilesXML = `<profiles>
  <profile><user>alice</user><interest>databases</interest><interest>ai</interest></profile>
  <profile><user>bob</user><interest>sports</interest></profile>
</profiles>`

func main() {
	db := vxml.Open()
	db.MustAdd("articles.xml", articlesXML)
	db.MustAdd("profiles.xml", profilesXML)

	// Each user's view joins their profile interests with the articles and
	// filters by permission level. The views are virtual: defining one per
	// user costs nothing until a search runs.
	userView := func(user, level string) string {
		return `
for $p in fn:doc(profiles.xml)/profiles//profile
where $p/user = '` + user + `'
return <feed>
  {for $a in fn:doc(articles.xml)/articles//article
   where $a/topic = $p/interest
   return if $a/level = '` + level + `'
          then <item>{$a/headline}{$a/body}</item>
          else <item>{$a/headline}</item>}
</feed>`
	}

	for _, u := range []struct{ name, level string }{
		{"alice", "public"},
		{"bob", "public"},
	} {
		v, err := db.DefineView(userView(u.name, "public"))
		if err != nil {
			log.Fatalf("%s view: %v", u.name, err)
		}
		results, stats, err := db.Search(v, []string{"search"}, &vxml.Options{TopK: 3})
		if err != nil {
			log.Fatalf("%s search: %v", u.name, err)
		}
		fmt.Printf("=== %s searches 'search' in their personal feed (%d matches, PDT %d nodes)\n",
			u.name, len(results), stats.PDTNodes)
		for _, r := range results {
			fmt.Printf("  rank %d score %.4f: %s\n", r.Rank, r.Score, r.XML)
		}
		fmt.Println()
	}
}
