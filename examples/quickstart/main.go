// Quickstart: the paper's running example (Figures 1 and 2).
//
// Two base documents — books and reviews — are joined on isbn into a
// virtual view that nests each book's reviews under the book. The view is
// never materialized; the ranked keyword query {XML, Search} runs over it
// through the PDT pipeline, and only the winners are materialized.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vxml"
)

const booksXML = `<books>
  <book><isbn>111-11-1111</isbn><title>XML Web Services</title>
        <publisher>Prentice Hall</publisher><year>2004</year></book>
  <book><isbn>222-22-2222</isbn><title>Artificial Intelligence</title>
        <publisher>Prentice Hall</publisher><year>2002</year></book>
  <book><isbn>333-33-3333</isbn><title>Medieval Manuscripts</title>
        <publisher>Ancient Press</publisher><year>1991</year></book>
</books>`

const reviewsXML = `<reviews>
  <review><isbn>111-11-1111</isbn><rate>Excellent</rate>
          <content>...about search...</content><reviewer>John</reviewer></review>
  <review><isbn>111-11-1111</isbn><rate>Good</rate>
          <content>Easy to read...</content><reviewer>Alex</reviewer></review>
  <review><isbn>222-22-2222</isbn><rate>Fair</rate>
          <content>classic xml search material</content><reviewer>Mary</reviewer></review>
</reviews>`

// The view of Figure 2: books published after 1995, each with the contents
// of its reviews nested under it.
const view = `
for $book in fn:doc(books.xml)/books//book
where $book/year > 1995
return <bookrevs>
         <book>{$book/title}</book>,
         {for $rev in fn:doc(reviews.xml)/reviews//review
          where $rev/isbn = $book/isbn
          return $rev/content}
       </bookrevs>`

func main() {
	db := vxml.Open()
	db.MustAdd("books.xml", booksXML)
	db.MustAdd("reviews.xml", reviewsXML)

	v, err := db.DefineView(view)
	if err != nil {
		log.Fatalf("compiling view: %v", err)
	}

	// Conjunctive keyword query over the virtual view. Note that no single
	// book or review contains both keywords: "XML" comes from the title
	// and "search" from a review — the view's join brings them together.
	results, stats, err := db.Search(v, []string{"XML", "Search"}, &vxml.Options{TopK: 10})
	if err != nil {
		log.Fatalf("search: %v", err)
	}

	fmt.Printf("keyword query {XML, Search} over the virtual view:\n\n")
	for _, r := range results {
		fmt.Printf("rank %d  score %.4f  tf %v\n%s\n\n", r.Rank, r.Score, r.TF, r.XML)
	}
	fmt.Printf("view size %d, matched %d; PDT %v (%d pruned nodes), eval %v, post %v\n",
		stats.ViewSize, stats.Matched, stats.PDTTime, stats.PDTNodes, stats.EvalTime, stats.PostTime)
	fmt.Printf("base-data fetches (winners only): %d\n", stats.BaseData)

	// The same query phrased as a single Figure-2 style XQuery.
	results2, _, err := db.Query(`
let $view := `+view+`
for $r in $view
where $r ftcontains('XML' & 'Search')
return $r`, nil)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Printf("\nFigure-2 style query returned %d results (same as above: %v)\n",
		len(results2), len(results2) == len(results))
}
