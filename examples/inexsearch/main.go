// INEX-style evaluation view (paper §5): articles nested under their
// authors over a generated INEX-like collection, searched with the marker
// keywords of Table 1 and compared across all three pipelines.
//
// Run with: go run ./examples/inexsearch
package main

import (
	"fmt"
	"log"

	"vxml"
	"vxml/internal/benchkit"
	"vxml/internal/inex"
	"vxml/internal/store"
)

func main() {
	// One bench unit of data with the default view (articles under
	// authors, one value join) — exactly the Figure 13 default workload.
	p := benchkit.Default()
	p.UnitBytes = 256 << 10
	p.SizeUnits = 2

	corpus := inex.Generate(inex.Options{TargetBytes: p.TargetBytes(), Seed: p.Seed})
	st := store.New()
	for _, doc := range corpus.Docs() {
		st.AddParsed(doc) // assign IDs and byte lengths before serializing
	}
	db := vxml.Open()
	for _, doc := range st.Docs() {
		db.MustAdd(doc.Name, doc.Root.XMLString(""))
	}

	v, err := db.DefineView(p.ViewText())
	if err != nil {
		log.Fatalf("view: %v", err)
	}

	fmt.Printf("corpus: %d articles by %d authors (%d bytes)\n\n",
		corpus.ArticleCount, corpus.AuthorCount, db.TotalBytes())

	for _, q := range [][]string{
		inex.LowSelectivity,    // frequent terms: long inverted lists
		inex.MediumSelectivity, // the paper's default
		inex.HighSelectivity,   // rare terms
	} {
		results, stats, err := db.Search(v, q, &vxml.Options{TopK: 5})
		if err != nil {
			log.Fatalf("search %v: %v", q, err)
		}
		fmt.Printf("query %v: %d/%d author records matched (total %v: pdt %v eval %v post %v)\n",
			q, stats.Matched, stats.ViewSize, stats.Total, stats.PDTTime, stats.EvalTime, stats.PostTime)
		if len(results) > 0 {
			fmt.Printf("  top hit (score %.4f): %.120s...\n", results[0].Score, results[0].XML)
		}
	}

	// All three pipelines agree on the default query.
	fmt.Println("\npipeline agreement on", inex.MediumSelectivity, ":")
	var fingerprints []string
	for _, ap := range []vxml.Approach{vxml.Efficient, vxml.Baseline, vxml.GTPTermJoin} {
		results, stats, err := db.Search(v, inex.MediumSelectivity, &vxml.Options{TopK: 5, Approach: ap})
		if err != nil {
			log.Fatalf("approach %d: %v", ap, err)
		}
		fp := ""
		for _, r := range results {
			fp += fmt.Sprintf("%.6f|", r.Score)
		}
		fingerprints = append(fingerprints, fp)
		name := [...]string{"Efficient", "Baseline", "GTP"}[ap]
		fmt.Printf("  %-9s total %-12v scores %s\n", name, stats.Total, fp)
	}
	fmt.Printf("identical rankings: %v\n",
		fingerprints[0] == fingerprints[1] && fingerprints[1] == fingerprints[2])
}
