// Streaming, pagination and cancellation: the ctx-first v1 query API.
//
// A corpus of 30 part documents is searched through a collection view
// three ways — the one-shot SearchContext, the Results iterator (winners
// materialized only as they are pulled; breaking early skips the rest),
// and Offset/TopK pages — and the deliveries are verified identical. A
// pre-canceled context then demonstrates the typed error taxonomy:
// errors.Is(err, context.Canceled) classifies the failure without string
// matching.
//
// Run with: go run ./examples/streaming
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"vxml"
)

func main() {
	db := vxml.Open()
	for d := 0; d < 30; d++ {
		topic := []string{"parsing", "ranking", "caching"}[d%3]
		xml := fmt.Sprintf(`<notes>
  <note><title>entry %d on %s</title>
        <body>field notes about xml %s and keyword search</body></note>
</notes>`, d, topic, topic)
		db.MustAdd(fmt.Sprintf("part-%02d.xml", d), xml)
	}
	view, err := db.DefineView(`
	  for $n in fn:collection("part-*")/notes//note
	  return <hit>{$n/title}, {$n/body}</hit>`)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	keywords := []string{"xml", "ranking"}

	// Reference: the one-shot search.
	all, _, err := db.SearchContext(ctx, view, keywords, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-shot search: %d results\n", len(all))

	// Streaming: each winner's subtree is fetched only when yielded, so
	// breaking out early never materializes the tail.
	streamed := 0
	for r, err := range db.Results(ctx, view, keywords, nil) {
		if err != nil {
			log.Fatal(err)
		}
		if r.XML != all[streamed].XML {
			log.Fatalf("streamed result %d diverged from the one-shot search", streamed)
		}
		streamed++
		if streamed == 3 {
			fmt.Printf("streamed the top %d and broke out; the other %d were never materialized\n",
				streamed, len(all)-streamed)
			break
		}
	}

	// Pagination: pages are windows of the same full ranking (and with
	// Options.Cache they share one cached entry).
	pageSize := 4
	total := 0
	for page := 0; ; page++ {
		results, _, err := db.SearchContext(ctx, view, keywords,
			&vxml.Options{Offset: page * pageSize, TopK: pageSize, Cache: true})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			if r.XML != all[total].XML {
				log.Fatalf("page %d diverged from the one-shot search at rank %d", page, r.Rank)
			}
			total++
		}
		if len(results) < pageSize {
			break
		}
	}
	fmt.Printf("paged through %d results, %d at a time, identical to the one-shot search\n", total, pageSize)

	// Cancellation: a canceled context unwinds with a typed, wrapped error.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := db.SearchContext(canceled, view, keywords, nil); errors.Is(err, context.Canceled) {
		fmt.Println("canceled search returned a wrapped context.Canceled, as typed errors promise")
	} else {
		log.Fatalf("expected a wrapped context.Canceled, got %v", err)
	}
}
