// Mutation equivalence: the headline property of the document lifecycle.
// Views are virtual, so a corpus that reached its state through any
// interleaving of Add, Replace and Delete must search byte-identically —
// rank, score, TF map, materialized XML, snippet — to a corpus built
// fresh from the same final documents in the same enumeration order, on
// every pipeline (Efficient, Baseline, GTP), at Parallelism 1 and 0, with
// the query-result cache off and on. A divergence means mutation left
// residue: stale postings, an unswept tombstone leaking into results, a
// missed cache invalidation, or an enumeration-order break.
package vxml_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"vxml"
	"vxml/internal/testkit"
)

func TestMutationEquivalence(t *testing.T) {
	baselineGoroutines := runtime.NumGoroutine()
	const trials = 48
	for trial := 0; trial < trials; trial++ {
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7100 + trial)))
			shards := 1 + rng.Intn(4)

			mutated := vxml.OpenShards(shards)
			authorsXML := testkit.AuthorsXML(rng)
			mutated.MustAdd("authors.xml", authorsXML)
			final := testkit.MutateRandomly(t, mutated, rng, nil)

			// The fresh corpus holds the same final documents, added in the
			// mutated corpus's enumeration (document ID) order — the order
			// every pipeline's collection expansion follows.
			fresh := vxml.OpenShards(shards)
			for _, name := range mutated.DocumentNames() {
				if name == "authors.xml" {
					fresh.MustAdd(name, authorsXML)
					continue
				}
				doc, ok := final[name]
				if !ok {
					t.Fatalf("corpus enumerates %q but the op log lost it", name)
				}
				fresh.MustAdd(name, doc)
			}

			kws := testkit.KeywordsFor(rng)
			disjunctive := rng.Intn(2) == 0
			topK := rng.Intn(3) * 4 // 0 (all), 4 or 8
			for _, viewText := range testkit.MutViews {
				mv, err := mutated.DefineView(viewText)
				if err != nil {
					t.Fatal(err)
				}
				fv, err := fresh.DefineView(viewText)
				if err != nil {
					t.Fatal(err)
				}
				var reference []vxml.Result
				for _, s := range testkit.MutSettings {
					opts := &vxml.Options{TopK: topK, Disjunctive: disjunctive, Approach: s.Approach, Parallelism: s.Parallel, Cache: s.Cache}
					got, _, err := mutated.Search(mv, kws, opts)
					if err != nil {
						t.Fatalf("%s over mutated corpus: %v", s.Label, err)
					}
					want, _, err := fresh.Search(fv, kws, opts)
					if err != nil {
						t.Fatalf("%s over fresh corpus: %v", s.Label, err)
					}
					testkit.MustEqualResultsOpt(t, s.Label+"/mutated-vs-fresh", got, want, s.Snippets)
					if reference == nil {
						reference = got
						if len(reference) == 0 && topK == 0 {
							// Acceptable (conjunctive queries can miss), but
							// most trials should produce results; seed choice
							// keeps this rare.
							t.Logf("trial produced no results for %v", kws)
						}
						continue
					}
					testkit.MustEqualResultsOpt(t, s.Label+"/cross-pipeline", got, reference, s.Snippets)
				}
			}
		})
	}
	testkit.WaitGoroutines(t, "after mutation equivalence trials", baselineGoroutines)
}
