// Mutation equivalence: the headline property of the document lifecycle.
// Views are virtual, so a corpus that reached its state through any
// interleaving of Add, Replace and Delete must search byte-identically —
// rank, score, TF map, materialized XML, snippet — to a corpus built
// fresh from the same final documents in the same enumeration order, on
// every pipeline (Efficient, Baseline, GTP), at Parallelism 1 and 0, with
// the query-result cache off and on. A divergence means mutation left
// residue: stale postings, an unswept tombstone leaking into results, a
// missed cache invalidation, or an enumeration-order break.
package vxml

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
)

// mutViews are the shapes each trial is searched through: a collection
// selection (replacements re-enter enumeration at their new position) and
// a collection-to-fixed-document join (exercises the evaluator's join
// paths over a mutated catalog).
var mutViews = []string{
	`for $a in fn:collection("part-*")/books//article
	 where $a/fm/yr > 1990
	 return <art>{$a/fm/tl}, {$a/bdy}</art>`,

	`for $a in fn:collection("part-*")/books//article
	 return <rec><t>{$a/fm/tl}</t>,
	   {for $u in fn:doc(authors.xml)/authors//author
	    where $u/name = $a/fm/au
	    return <inst>{$u/affil}</inst>},
	   {$a/bdy}</rec>`,
}

// randomPartDoc builds one <books> document of 1..4 random articles.
func randomPartDoc(rng *rand.Rand, salt int) string {
	var articles strings.Builder
	for a, n := 0, 1+rng.Intn(4); a < n; a++ {
		articles.WriteString(randomArticle(rng, salt*100+a))
	}
	return "<books>" + articles.String() + "</books>"
}

// mutateRandomly drives db through 12..30 random lifecycle operations over
// a bounded name pool, guaranteeing at least one replace and one delete,
// and returns the final content of every name still present.
func mutateRandomly(t *testing.T, db *Database, rng *rand.Rand) map[string]string {
	t.Helper()
	final := map[string]string{}
	var present []string
	addDoc := func() {
		if len(present) >= 8 {
			return
		}
		name := fmt.Sprintf("part-%02d.xml", len(final)+len(present)*17+rng.Intn(90))
		if _, ok := final[name]; ok {
			return
		}
		doc := randomPartDoc(rng, len(present))
		if err := db.Add(name, doc); err != nil {
			t.Fatal(err)
		}
		final[name] = doc
		present = append(present, name)
	}
	replaceDoc := func() {
		if len(present) == 0 {
			return
		}
		name := present[rng.Intn(len(present))]
		doc := randomPartDoc(rng, 50+rng.Intn(50))
		if err := db.Replace(name, doc); err != nil {
			t.Fatal(err)
		}
		final[name] = doc
	}
	deleteDoc := func() {
		if len(present) < 2 {
			return
		}
		i := rng.Intn(len(present))
		name := present[i]
		if err := db.Delete(name); err != nil {
			t.Fatal(err)
		}
		delete(final, name)
		present = append(present[:i], present[i+1:]...)
	}
	addDoc()
	addDoc()
	for op, n := 0, 12+rng.Intn(18); op < n; op++ {
		switch rng.Intn(4) {
		case 0, 1:
			addDoc()
		case 2:
			replaceDoc()
		default:
			deleteDoc()
		}
	}
	replaceDoc() // guarantee the lifecycle actually ran
	deleteDoc()
	return final
}

// searchSettings enumerates every (approach, parallelism, cache) cell the
// equivalence must hold over. The comparators run sequentially by
// construction, so only Efficient varies parallelism.
type searchSetting struct {
	label    string
	approach Approach
	parallel int
	cache    bool
	snippets bool // the comparators report no snippets, by design
}

var mutSettings = []searchSetting{
	{"efficient/seq/nocache", Efficient, 1, false, true},
	{"efficient/par/nocache", Efficient, 0, false, true},
	{"efficient/seq/cache", Efficient, 1, true, true},
	{"efficient/par/cache", Efficient, 0, true, true},
	{"baseline/nocache", Baseline, 1, false, false},
	{"baseline/cache", Baseline, 1, true, false},
	{"gtp/nocache", GTPTermJoin, 1, false, false},
	{"gtp/cache", GTPTermJoin, 1, true, false},
}

func TestMutationEquivalence(t *testing.T) {
	baselineGoroutines := runtime.NumGoroutine()
	const trials = 48
	for trial := 0; trial < trials; trial++ {
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7100 + trial)))
			shards := 1 + rng.Intn(4)

			mutated := OpenShards(shards)
			var authors strings.Builder
			authors.WriteString("<authors>")
			for i := 0; i < 6; i++ {
				fmt.Fprintf(&authors, `<author><name>author%d</name><affil>inst %s %d</affil></author>`,
					i, eqVocabulary[rng.Intn(len(eqVocabulary))], i)
			}
			authors.WriteString("</authors>")
			mutated.MustAdd("authors.xml", authors.String())
			final := mutateRandomly(t, mutated, rng)

			// The fresh corpus holds the same final documents, added in the
			// mutated corpus's enumeration (document ID) order — the order
			// every pipeline's collection expansion follows.
			fresh := OpenShards(shards)
			for _, name := range mutated.DocumentNames() {
				if name == "authors.xml" {
					fresh.MustAdd(name, authors.String())
					continue
				}
				doc, ok := final[name]
				if !ok {
					t.Fatalf("corpus enumerates %q but the op log lost it", name)
				}
				fresh.MustAdd(name, doc)
			}

			kws := keywordsFor(rng)
			disjunctive := rng.Intn(2) == 0
			topK := rng.Intn(3) * 4 // 0 (all), 4 or 8
			for _, viewText := range mutViews {
				mv, err := mutated.DefineView(viewText)
				if err != nil {
					t.Fatal(err)
				}
				fv, err := fresh.DefineView(viewText)
				if err != nil {
					t.Fatal(err)
				}
				var reference []Result
				for _, s := range mutSettings {
					opts := &Options{TopK: topK, Disjunctive: disjunctive, Approach: s.approach, Parallelism: s.parallel, Cache: s.cache}
					got, _, err := mutated.Search(mv, kws, opts)
					if err != nil {
						t.Fatalf("%s over mutated corpus: %v", s.label, err)
					}
					want, _, err := fresh.Search(fv, kws, opts)
					if err != nil {
						t.Fatalf("%s over fresh corpus: %v", s.label, err)
					}
					mustEqualResultsOpt(t, s.label+"/mutated-vs-fresh", got, want, s.snippets)
					if reference == nil {
						reference = got
						if len(reference) == 0 && topK == 0 {
							// Acceptable (conjunctive queries can miss), but
							// most trials should produce results; seed choice
							// keeps this rare.
							t.Logf("trial produced no results for %v", kws)
						}
						continue
					}
					mustEqualResultsOpt(t, s.label+"/cross-pipeline", got, reference, s.snippets)
				}
			}
		})
	}
	waitGoroutines(t, "after mutation equivalence trials", baselineGoroutines)
}
