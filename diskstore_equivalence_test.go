// Disk-backend oracle: the disk-resident, DAG-compressed store is a pure
// storage strategy. A database opened over a SaveDisk directory must
// search byte-identically — rank, score, TF map, materialized XML,
// snippet — to the heap-backed database it was saved from, on every
// pipeline (Efficient, Baseline, GTP), sequential and parallel, with the
// query cache off and on; and a disk-backed corpus mutated through the
// public API must stay byte-identical to a heap corpus receiving the same
// operations, across restarts. A divergence means the DAG encode/decode,
// the persisted indices, or the cache invalidation broke ranking.
package vxml_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"vxml"
	"vxml/internal/diskstore"
	"vxml/internal/testkit"
)

// diskOptsFor rotates cache/I/O configurations so the equivalence matrix
// also covers the uncomfortable corners: caches disabled (every fetch
// decodes from disk), a tiny block cache under eviction pressure, and the
// mmap read path.
func diskOptsFor(trial int) diskstore.Options {
	switch trial % 4 {
	case 1:
		return diskstore.Options{DocCacheSize: -1, IndexCacheSize: -1}
	case 2:
		return diskstore.Options{CacheBytes: 4096, BlockSize: 512, DocCacheSize: -1}
	case 3:
		return diskstore.Options{Mmap: true}
	default:
		return diskstore.Options{}
	}
}

// TestDiskHeapSearchEquivalence builds randomized heap corpora, saves each
// to disk, reopens, and drives the full setting matrix (4 view shapes x 8
// pipeline/parallelism/cache cells) over both backends.
func TestDiskHeapSearchEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(9200 + seed))
			heap := testkit.BuildEqCorpus(t, rng, 4+rng.Intn(20))
			dir := t.TempDir()
			if err := heap.SaveDisk(dir); err != nil {
				t.Fatal(err)
			}
			disk, err := vxml.OpenDiskOptions(dir, diskOptsFor(int(seed)))
			if err != nil {
				t.Fatal(err)
			}
			defer disk.Close()

			// Corpus identity first: same names in the same enumeration
			// order, same shard assignment, same total size.
			wantNames, gotNames := heap.DocumentNames(), disk.DocumentNames()
			if len(wantNames) != len(gotNames) {
				t.Fatalf("disk corpus has %d documents, want %d", len(gotNames), len(wantNames))
			}
			for i := range wantNames {
				if wantNames[i] != gotNames[i] {
					t.Fatalf("enumeration diverged at %d: %q vs %q", i, gotNames[i], wantNames[i])
				}
			}
			if got, want := disk.TotalBytes(), heap.TotalBytes(); got != want {
				t.Fatalf("TotalBytes = %d, want %d", got, want)
			}
			wantShards, gotShards := heap.ShardStats(), disk.ShardStats()
			if len(wantShards) != len(gotShards) {
				t.Fatalf("shard count %d, want %d", len(gotShards), len(wantShards))
			}
			for i := range wantShards {
				if gotShards[i].Documents != wantShards[i].Documents || gotShards[i].Bytes != wantShards[i].Bytes {
					t.Fatalf("shard %d: %+v, want %+v", i, gotShards[i], wantShards[i])
				}
			}

			kws := testkit.KeywordsFor(rng)
			topK := rng.Intn(3) * 4
			disjunctive := rng.Intn(2) == 0
			for vi, viewText := range testkit.EqViews {
				hv, err := heap.DefineView(viewText)
				if err != nil {
					t.Fatal(err)
				}
				dv, err := disk.DefineView(viewText)
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range testkit.MutSettings {
					opts := &vxml.Options{TopK: topK, Disjunctive: disjunctive, Approach: s.Approach, Parallelism: s.Parallel, Cache: s.Cache}
					want, _, err := heap.Search(hv, kws, opts)
					if err != nil {
						t.Fatalf("view %d %s heap: %v", vi, s.Label, err)
					}
					got, _, err := disk.Search(dv, kws, opts)
					if err != nil {
						t.Fatalf("view %d %s disk: %v", vi, s.Label, err)
					}
					testkit.MustEqualResultsOpt(t, fmt.Sprintf("view %d %s disk-vs-heap", vi, s.Label), got, want, s.Snippets)
				}
			}

			stats, ok := disk.DiskStats()
			if !ok {
				t.Fatal("DiskStats not available on disk-backed database")
			}
			if stats.Documents != len(wantNames) || stats.DataBytes <= 0 {
				t.Fatalf("implausible disk stats: %+v", stats)
			}
			if _, ok := heap.DiskStats(); ok {
				t.Fatal("heap-backed database claims disk stats")
			}
		})
	}
}

// TestDiskHeapMutationEquivalence is the mutation matrix: a heap and a
// disk database receive the identical randomized Add/Replace/Delete
// sequence (same-seeded generators), then every view and setting cell must
// agree — and must still agree after the disk database is closed and
// reopened, which exercises the incremental manifest fold and the lazy
// dedup-table rebuild.
func TestDiskHeapMutationEquivalence(t *testing.T) {
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			seedRng := rand.New(rand.NewSource(int64(9300 + trial)))
			authorsXML := testkit.AuthorsXML(seedRng)
			opSeed := seedRng.Int63()

			heap := vxml.Open()
			heap.MustAdd("authors.xml", authorsXML)
			dir := t.TempDir()
			disk, err := vxml.OpenDiskOptions(dir, diskOptsFor(trial))
			if err != nil {
				t.Fatal(err)
			}
			disk.MustAdd("authors.xml", authorsXML)

			finalHeap := testkit.MutateRandomly(t, heap, rand.New(rand.NewSource(opSeed)), nil)
			finalDisk := testkit.MutateRandomly(t, disk, rand.New(rand.NewSource(opSeed)), nil)
			if len(finalHeap) != len(finalDisk) {
				t.Fatalf("op sequences diverged: %d vs %d final documents", len(finalHeap), len(finalDisk))
			}

			kws := testkit.KeywordsFor(seedRng)
			compare := func(d *vxml.Database, phase string) {
				t.Helper()
				for vi, viewText := range testkit.MutViews {
					hv, err := heap.DefineView(viewText)
					if err != nil {
						t.Fatal(err)
					}
					dv, err := d.DefineView(viewText)
					if err != nil {
						t.Fatal(err)
					}
					for _, s := range testkit.MutSettings {
						opts := &vxml.Options{TopK: 8, Approach: s.Approach, Parallelism: s.Parallel, Cache: s.Cache}
						want, _, err := heap.Search(hv, kws, opts)
						if err != nil {
							t.Fatalf("%s view %d %s heap: %v", phase, vi, s.Label, err)
						}
						got, _, err := d.Search(dv, kws, opts)
						if err != nil {
							t.Fatalf("%s view %d %s disk: %v", phase, vi, s.Label, err)
						}
						testkit.MustEqualResultsOpt(t, fmt.Sprintf("%s view %d %s", phase, vi, s.Label), got, want, s.Snippets)
					}
				}
			}
			compare(disk, "live")

			// Restart: everything the mutations wrote must have persisted
			// incrementally — no save step between mutate and reopen.
			if err := disk.Close(); err != nil {
				t.Fatal(err)
			}
			reopened, err := vxml.OpenDiskOptions(dir, diskOptsFor(trial+1))
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.Close()
			wantNames, gotNames := heap.DocumentNames(), reopened.DocumentNames()
			if len(wantNames) != len(gotNames) {
				t.Fatalf("reopened corpus has %d documents, want %d", len(gotNames), len(wantNames))
			}
			for i := range wantNames {
				if wantNames[i] != gotNames[i] {
					t.Fatalf("reopened enumeration diverged at %d: %q vs %q", i, gotNames[i], wantNames[i])
				}
			}
			compare(reopened, "reopened")

			// The reopened database keeps evolving identically.
			extra := testkit.RandomPartDoc(seedRng, 1000+trial)
			heap.MustAdd("part-extra.xml", extra)
			reopened.MustAdd("part-extra.xml", extra)
			compare(reopened, "post-reopen-add")
		})
	}
}

// TestDiskBackendConcurrentSearches races many goroutines over one
// disk-backed database — mixed views, pipelines and parallelism — against
// precomputed heap references. Under -race this pins the thread safety of
// the block, document and index caches on the shared read path.
func TestDiskBackendConcurrentSearches(t *testing.T) {
	rng := rand.New(rand.NewSource(9400))
	heap := testkit.BuildEqCorpus(t, rng, 16)
	dir := t.TempDir()
	if err := heap.SaveDisk(dir); err != nil {
		t.Fatal(err)
	}
	// Small block cache forces eviction churn under concurrency.
	disk, err := vxml.OpenDiskOptions(dir, diskstore.Options{CacheBytes: 8192, BlockSize: 512, DocCacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	type job struct {
		label string
		view  *vxml.View
		kws   []string
		opts  vxml.Options
		want  []vxml.Result
	}
	var jobs []job
	for vi, viewText := range testkit.EqViews {
		hv, err := heap.DefineView(viewText)
		if err != nil {
			t.Fatal(err)
		}
		dv, err := disk.DefineView(viewText)
		if err != nil {
			t.Fatal(err)
		}
		kws := testkit.KeywordsFor(rng)
		for _, s := range testkit.MutSettings {
			opts := vxml.Options{TopK: 8, Approach: s.Approach, Parallelism: s.Parallel, Cache: s.Cache}
			want, _, err := heap.Search(hv, kws, &opts)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job{fmt.Sprintf("view %d %s", vi, s.Label), dv, kws, opts, want})
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers*len(jobs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				j := jobs[(i+w)%len(jobs)]
				o := j.opts
				got, _, err := disk.Search(j.view, j.kws, &o)
				if err != nil {
					errs <- fmt.Sprintf("worker %d %s: %v", w, j.label, err)
					return
				}
				if testkit.RenderResults(got) != testkit.RenderResults(j.want) {
					errs <- fmt.Sprintf("worker %d %s: results diverged from heap reference", w, j.label)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	stats, ok := disk.DiskStats()
	if !ok {
		t.Fatal("DiskStats unavailable")
	}
	if stats.BlockCache.Hits+stats.BlockCache.Misses == 0 {
		t.Error("concurrent searches never touched the block cache")
	}
	if stats.BlockCache.Bytes > stats.BlockCache.Capacity {
		t.Errorf("block cache over budget: %d > %d", stats.BlockCache.Bytes, stats.BlockCache.Capacity)
	}
}

// TestLoadWithStats pins satellite #1: Load reports its parse/index time
// split and corpus totals.
func TestLoadWithStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9500))
	db := testkit.BuildEqCorpus(t, rng, 8)
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, stats, err := vxml.LoadWithStats(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil {
		t.Fatal("nil LoadStats")
	}
	if stats.Documents != len(db.DocumentNames()) {
		t.Errorf("Documents = %d, want %d", stats.Documents, len(db.DocumentNames()))
	}
	if stats.TotalBytes != db.TotalBytes() {
		t.Errorf("TotalBytes = %d, want %d", stats.TotalBytes, db.TotalBytes())
	}
	if stats.Total < stats.Parse || stats.Total < stats.Index || stats.Total <= 0 {
		t.Errorf("implausible timing split: %+v", stats)
	}
	if got, want := loaded.DocumentNames(), db.DocumentNames(); len(got) != len(want) {
		t.Errorf("loaded %d documents, want %d", len(got), len(want))
	}
}
